(* Fault layer tests: injector semantics, the stall/crash torture matrix
   over the Evequoz queues and the Blelloch-Wei backend (the lock-freedom
   acceptance criterion: every survivor completes >= 10k ops while one
   domain is frozen inside each injection point), registry abandonment,
   and the randomized schedule explorer with its shrinker and repro
   lines. *)

module Fault = Nbq_primitives.Fault
module Injector = Nbq_fault.Injector
module Torture = Nbq_fault.Torture
module Explore = Nbq_fault.Explore
module Sim = Nbq_modelcheck.Sim

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Fault points --- *)

let point_strings () =
  (* Derived from the catalog, not a literal count: adding a point must not
     break this test, but every point needs a distinct, parsable name. *)
  Alcotest.(check bool) "catalog non-empty" true (Fault.all <> []);
  Alcotest.(check int) "point names are distinct"
    (List.length Fault.all)
    (List.length
       (List.sort_uniq compare (List.map Fault.to_string Fault.all)));
  List.iter
    (fun p ->
      match Fault.of_string (Fault.to_string p) with
      | Some p' -> Alcotest.(check bool) "round trip" true (p = p')
      | None -> Alcotest.fail ("unparsable: " ^ Fault.to_string p))
    Fault.all;
  Alcotest.(check bool) "unknown rejected" true (Fault.of_string "nope" = None)

(* --- Injector --- *)

let injector_disarmed_noop () =
  let i = Injector.create () in
  Injector.hit i Fault.Op_gap;
  Alcotest.(check int) "no hits counted" 0 (Injector.hits i);
  Alcotest.(check bool) "not triggered" false (Injector.triggered i)

let injector_crash_on_nth () =
  let i = Injector.create () in
  Injector.arm i ~point:Fault.Op_gap ~action:Injector.Crash ~after:3;
  Injector.hit i Fault.Ll_reserve;
  (* wrong point: ignored *)
  Injector.hit i Fault.Op_gap;
  Injector.hit i Fault.Op_gap;
  Alcotest.(check bool) "not yet" false (Injector.triggered i);
  (try
     Injector.hit i Fault.Op_gap;
     Alcotest.fail "third hit must crash"
   with Injector.Crashed -> ());
  Alcotest.(check bool) "triggered" true (Injector.triggered i);
  Alcotest.(check int) "three hits" 3 (Injector.hits i);
  (match Injector.victim i with
  | Some id ->
      Alcotest.(check int) "victim is us" (Domain.self () :> int) id
  | None -> Alcotest.fail "victim recorded");
  (* One-shot: the fourth hit passes through. *)
  Injector.hit i Fault.Op_gap;
  Alcotest.(check int) "keeps counting" 4 (Injector.hits i)

let injector_stall_release () =
  let i = Injector.create () in
  Injector.arm i ~point:Fault.Sc_attempt ~action:Injector.Stall ~after:1;
  let d =
    Domain.spawn (fun () ->
        Injector.hit i Fault.Sc_attempt;
        42)
  in
  while not (Injector.triggered i) do
    Domain.cpu_relax ()
  done;
  Injector.release i;
  Alcotest.(check int) "victim resumed after release" 42 (Domain.join d)

let injector_arm_validation () =
  let i = Injector.create () in
  Alcotest.check_raises "after < 1" (Invalid_argument "Injector.arm: after < 1")
    (fun () ->
      Injector.arm i ~point:Fault.Op_gap ~action:Injector.Stall ~after:0)

(* --- Stall torture matrix (the acceptance criterion) --- *)

let stall_point target point () =
  let o =
    Torture.run ~workers:4 ~target_ops:10_000 target ~point
      ~action:Injector.Stall
  in
  Alcotest.(check bool) "point fired" true o.Torture.triggered;
  Alcotest.(check bool)
    (Printf.sprintf "survivors completed >= 10k ops (got %d)"
       o.Torture.min_survivor_ops)
    true
    (o.Torture.min_survivor_ops >= 10_000);
  Alcotest.(check int) "exact conservation" 0 o.Torture.balance;
  Alcotest.(check bool) "recovered" true o.Torture.recovered

let stall_matrix target =
  List.map
    (fun p ->
      slow
        (Printf.sprintf "%s / %s" (Torture.name target) (Fault.to_string p))
        (stall_point target p))
    (Torture.points target)

let opgap_generic name () =
  match Torture.find name with
  | None -> Alcotest.fail ("unknown torture target: " ^ name)
  | Some t -> stall_point t Fault.Op_gap ()

(* --- Crash torture and registry abandonment --- *)

let crash_point ?(check_audit = false) target point () =
  let workers = 4 in
  let o =
    Torture.run ~workers ~target_ops:5_000 target ~point
      ~action:Injector.Crash
  in
  Alcotest.(check bool) "point fired" true o.Torture.triggered;
  Alcotest.(check bool) "survivors progressed" true
    (o.Torture.min_survivor_ops >= 5_000);
  Alcotest.(check bool)
    (Printf.sprintf "conservation within +-1 (got %d)" o.Torture.balance)
    true o.Torture.conserved;
  Alcotest.(check bool) "recovered" true o.Torture.recovered;
  if check_audit then
    match o.Torture.audit with
    | None -> Alcotest.fail "target must expose an audit"
    | Some a ->
        (* Each crashed worker abandoned the handle it registered at
           operation entry, and nothing else does: the owned count at
           quiescence equals the victim count (the bounded leak the paper
           accepts).  The registry itself stays at the concurrency
           high-water mark — at most one record per worker, plus slack for
           the drain/recovery handle and one allocation race. *)
        let victims = workers - o.Torture.survivors in
        Alcotest.(check int) "abandoned variables = crashed workers" victims
          a.Nbq_primitives.Llsc_cas.owned;
        Alcotest.(check bool)
          (Printf.sprintf "registry bounded by concurrency (%d registered, %d workers)"
             a.Nbq_primitives.Llsc_cas.registered workers)
          true
          (a.Nbq_primitives.Llsc_cas.registered <= workers + 2)

(* --- Schedule explorer --- *)

(* A deliberately racy counter: get-then-set increments lose updates under
   preemption, but never under the default non-preemptive schedule.  The
   explorer must find the race, shrink it to (almost) one preemption, and
   replay it from the printed repro. *)
let racy_scenario () =
  let c = Sim.Atomic.make 0 in
  let incr () =
    let v = Sim.Atomic.get c in
    Sim.Atomic.set c (v + 1)
  in
  ( [| incr; incr |],
    fun () ->
      let v = Sim.run_sequential (fun () -> Sim.Atomic.get c) in
      if v <> 2 then failwith "lost update" )

let correct_scenario () =
  let c = Sim.Atomic.make 0 in
  let incr () = ignore (Sim.Atomic.fetch_and_add c 1) in
  ( [| incr; incr |],
    fun () ->
      let v = Sim.run_sequential (fun () -> Sim.Atomic.get c) in
      if v <> 2 then failwith "atomic increment lost" )

let explore_default_passes () =
  match Explore.run_decisions racy_scenario [] with
  | Explore.Passed -> ()
  | Explore.Diverged -> Alcotest.fail "default schedule diverged"
  | Explore.Failed _ ->
      Alcotest.fail "non-preemptive schedule cannot lose the update"

let explore_finds_shrinks_replays () =
  match Explore.search ~trials:200 ~seed:42 racy_scenario with
  | None -> Alcotest.fail "randomized search missed the lost update"
  | Some f ->
      Alcotest.(check bool) "at least one preemption" true
        (f.Explore.decisions <> []);
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 2 decisions (got %d)"
           (List.length f.Explore.decisions))
        true
        (List.length f.Explore.decisions <= 2);
      (match Explore.run_decisions racy_scenario f.Explore.decisions with
      | Explore.Failed _ -> ()
      | _ -> Alcotest.fail "shrunk schedule must still fail");
      let line = Explore.repro_line f in
      (match Explore.parse_repro line with
      | Some (seed, ds) ->
          Alcotest.(check int) "seed round-trips" f.Explore.seed seed;
          Alcotest.(check bool) "decisions round-trip" true
            (ds = f.Explore.decisions);
          (* The acceptance criterion: the printed repro replays the
             failure deterministically. *)
          (match Explore.run_decisions racy_scenario ds with
          | Explore.Failed _ -> ()
          | _ -> Alcotest.fail "parsed repro must fail deterministically")
      | None -> Alcotest.fail ("repro line must parse: " ^ line))

let explore_deterministic () =
  match
    ( Explore.search ~trials:200 ~seed:7 racy_scenario,
      Explore.search ~trials:200 ~seed:7 racy_scenario )
  with
  | Some a, Some b ->
      Alcotest.(check int) "same trial count" a.Explore.trials
        b.Explore.trials;
      Alcotest.(check bool) "same shrunk schedule" true
        (a.Explore.decisions = b.Explore.decisions)
  | _ -> Alcotest.fail "seeded search must find the race both times"

let explore_correct_scenario_clean () =
  match Explore.search ~trials:100 ~seed:3 correct_scenario with
  | None -> ()
  | Some f ->
      Alcotest.fail ("false positive: " ^ Explore.repro_line f)

let repro_empty_round_trip () =
  let f = { Explore.seed = 5; trials = 1; decisions = []; message = "m" } in
  match Explore.parse_repro (Explore.repro_line f) with
  | Some (5, []) -> ()
  | _ -> Alcotest.fail "empty decision list must round-trip"

let repro_parse_rejects_garbage () =
  Alcotest.(check bool) "garbage" true (Explore.parse_repro "hello" = None);
  Alcotest.(check bool) "bad decisions" true
    (Explore.parse_repro "NBQ-FAULT-REPRO v1 seed=1 decisions=x:y" = None)

(* --- Fault windows as scheduling points in the model checker --- *)

module SimCas =
  Nbq_core.Evequoz_cas.Make_injected (Sim.Atomic) (Nbq_primitives.Probe.Noop)
    (Explore.Yield_at_faults)

let injected_cas_scenario () =
  let q = SimCas.create ~capacity:2 in
  let deq_ok = Array.make 2 false in
  let worker i () =
    let h = SimCas.register q in
    ignore (SimCas.enqueue_with q h (100 + i));
    (match SimCas.dequeue_with q h with
    | Some _ -> deq_ok.(i) <- true
    | None -> ());
    SimCas.deregister h
  in
  ( [| worker 0; worker 1 |],
    fun () ->
      if not (deq_ok.(0) && deq_ok.(1)) then
        failwith "a dequeue lost its item";
      let len = Sim.run_sequential (fun () -> SimCas.length q) in
      if len <> 0 then failwith "queue not drained" )

let explore_injected_cas_exhaustive () =
  let stats =
    Sim.explore ~max_schedules:200_000 ~preemption_bound:(Some 2)
      injected_cas_scenario
  in
  Alcotest.(check bool) "schedules completed" true (stats.Sim.completed > 0)

let explore_injected_cas_random () =
  match Explore.search ~trials:100 ~seed:11 injected_cas_scenario with
  | None -> ()
  | Some f ->
      Alcotest.fail
        ("randomized schedules broke evequoz-cas: " ^ Explore.repro_line f)

let () =
  Alcotest.run "fault"
    [
      ("points", [ quick "to_string/of_string round trip" point_strings ]);
      ( "injector",
        [
          quick "disarmed is a no-op" injector_disarmed_noop;
          quick "crash on the nth hit, one-shot" injector_crash_on_nth;
          quick "stall until release" injector_stall_release;
          quick "arm validation" injector_arm_validation;
        ] );
      ("stall-matrix evequoz-llsc", stall_matrix Torture.evequoz_llsc);
      ("stall-matrix evequoz-cas", stall_matrix Torture.evequoz_cas);
      ("stall-matrix evequoz-bw", stall_matrix Torture.evequoz_bw);
      ("stall-matrix evequoz-seg", stall_matrix Torture.evequoz_seg);
      ("stall-matrix scq", stall_matrix Torture.scq);
      ("stall-matrix scq-wcq", stall_matrix Torture.scq_wcq);
      ( "stall-op-gap generic",
        [
          slow "two-lock" (opgap_generic "two-lock");
          slow "ms-gc" (opgap_generic "ms-gc");
        ] );
      ( "crash",
        [
          slow "llsc / counter-bump"
            (crash_point Torture.evequoz_llsc Fault.Counter_bump);
          slow "cas / slot-swap abandons marker"
            (crash_point ~check_audit:true Torture.evequoz_cas Fault.Slot_swap);
          slow "cas / tag-register abandons variable"
            (crash_point ~check_audit:true Torture.evequoz_cas
               Fault.Tag_register);
          slow "cas / tag-deregister abandons variable"
            (crash_point ~check_audit:true Torture.evequoz_cas
               Fault.Tag_deregister);
          slow "bw / slot-swap abandons announcement"
            (crash_point ~check_audit:true Torture.evequoz_bw Fault.Slot_swap);
          slow "bw / tag-register abandons record"
            (crash_point ~check_audit:true Torture.evequoz_bw
               Fault.Tag_register);
          slow "seg / seg-append abandons fresh segment"
            (crash_point Torture.evequoz_seg Fault.Seg_append);
          slow "seg / seg-retire abandons hazard record"
            (crash_point Torture.evequoz_seg Fault.Seg_retire);
          slow "scq / faa-cycle abandons ticket"
            (crash_point Torture.scq Fault.Faa_cycle);
          slow "scq / threshold-reset dies before restore"
            (crash_point Torture.scq Fault.Threshold_reset);
          slow "scq / catchup dies mid tail-repair"
            (crash_point Torture.scq Fault.Catchup);
          slow "scq-wcq / faa-cycle abandons ticket"
            (crash_point Torture.scq_wcq Fault.Faa_cycle);
        ] );
      ( "explore",
        [
          quick "default schedule passes" explore_default_passes;
          quick "finds, shrinks, replays the race"
            explore_finds_shrinks_replays;
          quick "seeded search is deterministic" explore_deterministic;
          quick "no false positive on atomic counter"
            explore_correct_scenario_clean;
          quick "empty repro round trip" repro_empty_round_trip;
          quick "repro parser rejects garbage" repro_parse_rejects_garbage;
        ] );
      ( "modelcheck-injected",
        [
          slow "exhaustive, fault windows as yields"
            explore_injected_cas_exhaustive;
          slow "randomized, fault windows as yields"
            explore_injected_cas_random;
        ] );
    ]
