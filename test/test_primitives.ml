(* Unit tests for the nbq_primitives substrates: PRNG, backoff, barrier,
   ideal LL/SC cells, and the CAS-simulated LL/SC protocol. *)

module Prng = Nbq_primitives.Prng
module Backoff = Nbq_primitives.Backoff
module Barrier = Nbq_primitives.Barrier
module Llsc = Nbq_primitives.Llsc
module L = Nbq_primitives.Llsc_cas

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Prng --- *)

let prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Prng.next_int64 a = Prng.next_int64 b)

let prng_int_bounds () =
  let g = Prng.create ~seed:3 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let x = Prng.int g bound in
      Alcotest.(check bool) "in range" true (x >= 0 && x < bound)
    done
  done

let prng_int_invalid () =
  let g = Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let prng_float_range () =
  let g = Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let prng_split_independent () =
  let g = Prng.create ~seed:5 in
  let h = Prng.split g in
  let xs = List.init 20 (fun _ -> Prng.next_int64 g) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 h) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prng_bool_mixes () =
  let g = Prng.create ~seed:6 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool g then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let prng_domain_local_stable () =
  let a = Prng.domain_local () in
  let b = Prng.domain_local () in
  Alcotest.(check bool) "same generator per domain" true (a == b)

let prng_domain_local_distinct () =
  let other =
    Domain.spawn (fun () ->
        let g = Prng.domain_local () in
        Prng.next_int64 g)
    |> Domain.join
  in
  let here = Prng.next_int64 (Prng.domain_local ()) in
  Alcotest.(check bool) "different domains, different seeds" true (other <> here)

(* --- Backoff --- *)

let backoff_growth () =
  let b = Backoff.create ~min_wait:2 ~max_wait:16 () in
  Alcotest.(check int) "starts at min" 2 (Backoff.current b);
  Backoff.once b;
  Alcotest.(check int) "doubles" 4 (Backoff.current b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "saturates" 16 (Backoff.current b);
  Backoff.once b;
  Alcotest.(check int) "stays saturated" 16 (Backoff.current b)

let backoff_reset () =
  let b = Backoff.create ~min_wait:1 ~max_wait:64 () in
  Backoff.once b;
  Backoff.once b;
  Backoff.reset b;
  Alcotest.(check int) "reset to min" 1 (Backoff.current b)

let backoff_validation () =
  Alcotest.check_raises "min_wait < 1"
    (Invalid_argument "Backoff.create: min_wait < 1") (fun () ->
      ignore (Backoff.create ~min_wait:0 ()));
  Alcotest.check_raises "max < min"
    (Invalid_argument "Backoff.create: max_wait < min_wait") (fun () ->
      ignore (Backoff.create ~min_wait:8 ~max_wait:4 ()))

let backoff_no_jitter_exact () =
  let b = Backoff.create ~min_wait:2 ~max_wait:16 () in
  Backoff.once b;
  Alcotest.(check int) "unjittered spin equals the envelope" 2
    (Backoff.last_wait b)

let backoff_jitter_bounds () =
  let b = Backoff.create ~min_wait:4 ~max_wait:64 ~jitter:true () in
  Alcotest.(check int) "no spin yet" 0 (Backoff.last_wait b);
  for _ = 1 to 20 do
    let envelope = Backoff.current b in
    Backoff.once b;
    let w = Backoff.last_wait b in
    Alcotest.(check bool)
      (Printf.sprintf "spin %d within [4, %d]" w envelope)
      true
      (w >= 4 && w <= envelope);
    let c = Backoff.current b in
    Alcotest.(check bool) "envelope within [min_wait, max_wait]" true
      (c >= 4 && c <= 64)
  done;
  Backoff.reset b;
  Alcotest.(check int) "reset clears last_wait" 0 (Backoff.last_wait b);
  Alcotest.(check int) "reset envelope" 4 (Backoff.current b)

(* --- Barrier --- *)

let barrier_releases_all () =
  let parties = 4 in
  let b = Barrier.create ~parties in
  let counter = Atomic.make 0 in
  let domains =
    List.init parties (fun _ ->
        Domain.spawn (fun () ->
            ignore (Atomic.fetch_and_add counter 1);
            Barrier.await b;
            (* After the barrier, everyone must have arrived. *)
            Atomic.get counter))
  in
  List.iter
    (fun d -> Alcotest.(check int) "all arrived first" parties (Domain.join d))
    domains

let barrier_reusable () =
  let parties = 3 in
  let b = Barrier.create ~parties in
  let phase = Atomic.make 0 in
  let domains =
    List.init parties (fun _ ->
        Domain.spawn (fun () ->
            let seen = ref [] in
            for _ = 1 to 5 do
              Barrier.await b;
              seen := Atomic.get phase :: !seen;
              Barrier.await b;
              ignore (Atomic.fetch_and_add phase 0)
            done;
            !seen))
  in
  (* Driver bumps the phase between rounds; but with symmetric workers we
     just verify nobody deadlocks across 10 barrier crossings. *)
  List.iter (fun d -> ignore (Domain.join d)) domains;
  Alcotest.(check int) "parties preserved" parties (Barrier.parties b)

let barrier_validation () =
  Alcotest.check_raises "parties < 1"
    (Invalid_argument "Barrier.create: parties < 1") (fun () ->
      ignore (Barrier.create ~parties:0))

(* --- Ideal LL/SC --- *)

let llsc_basic () =
  let c = Llsc.make 10 in
  Alcotest.(check int) "get" 10 (Llsc.get c);
  let l = Llsc.ll c in
  Alcotest.(check int) "ll value" 10 (Llsc.value l);
  Alcotest.(check bool) "sc succeeds" true (Llsc.sc c l 20);
  Alcotest.(check int) "written" 20 (Llsc.get c)

let llsc_sc_fails_after_write () =
  let c = Llsc.make 1 in
  let l = Llsc.ll c in
  Llsc.set c 2;
  Alcotest.(check bool) "reservation broken" false (Llsc.sc c l 3);
  Alcotest.(check int) "value intact" 2 (Llsc.get c)

let llsc_sc_fails_after_other_sc () =
  let c = Llsc.make 1 in
  let l1 = Llsc.ll c in
  let l2 = Llsc.ll c in
  Alcotest.(check bool) "first sc wins" true (Llsc.sc c l2 5);
  Alcotest.(check bool) "second sc loses" false (Llsc.sc c l1 7);
  Alcotest.(check int) "winner's value" 5 (Llsc.get c)

let llsc_aba_immune () =
  (* The scenario CAS cannot detect: A -> B -> A.  LL/SC must still fail. *)
  let c = Llsc.make 100 in
  let l = Llsc.ll c in
  Llsc.set c 200;
  Llsc.set c 100;
  (* same value as at ll time *)
  Alcotest.(check bool) "sc fails despite equal value" false (Llsc.sc c l 300)

let llsc_vl () =
  let c = Llsc.make 0 in
  let l = Llsc.ll c in
  Alcotest.(check bool) "valid before write" true (Llsc.vl c l);
  Llsc.set c 1;
  Alcotest.(check bool) "invalid after write" false (Llsc.vl c l)

let llsc_sc_only_once () =
  let c = Llsc.make 0 in
  let l = Llsc.ll c in
  Alcotest.(check bool) "first" true (Llsc.sc c l 1);
  Alcotest.(check bool) "reservation consumed" false (Llsc.sc c l 2)

let llsc_concurrent_counter () =
  (* LL/SC retry loop implements an exact concurrent counter. *)
  let c = Llsc.make 0 in
  let per_domain = 10_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              let rec incr () =
                let l = Llsc.ll c in
                if not (Llsc.sc c l (Llsc.value l + 1)) then incr ()
              in
              incr ()
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "exact count" (per_domain * domains) (Llsc.get c)

let llsc_weak_failure_rate () =
  let c = Llsc.Weak.make ~failure_rate:0.5 0 in
  let failures = ref 0 in
  let attempts = 2000 in
  for _ = 1 to attempts do
    let l = Llsc.Weak.ll c in
    if not (Llsc.Weak.sc c l (Llsc.Weak.value l + 1)) then incr failures
  done;
  (* ~50% spurious failures expected; accept a wide band. *)
  Alcotest.(check bool) "some spurious failures" true (!failures > attempts / 5);
  Alcotest.(check bool) "not all failures" true (!failures < attempts * 4 / 5)

let llsc_weak_zero_rate_is_ideal () =
  let c = Llsc.Weak.make ~failure_rate:0.0 0 in
  for i = 0 to 99 do
    let l = Llsc.Weak.ll c in
    Alcotest.(check bool) "always succeeds" true (Llsc.Weak.sc c l (i + 1))
  done;
  Alcotest.(check int) "counted" 100 (Llsc.Weak.get c)

let llsc_weak_rate_clamped () =
  (* Rates outside [0,1] are clamped rather than rejected. *)
  let c = Llsc.Weak.make ~failure_rate:(-3.0) 0 in
  let l = Llsc.Weak.ll c in
  Alcotest.(check bool) "clamped to 0 -> succeeds" true (Llsc.Weak.sc c l 1)

(* --- CAS-simulated LL/SC --- *)

let lc_basic_ll_sc () =
  let reg = L.create_registry () in
  let h = L.register reg in
  let c = L.make 10 in
  Alcotest.(check int) "ll reads" 10 (L.ll c h);
  Alcotest.(check bool) "sc succeeds" true (L.sc c h 20);
  Alcotest.(check int) "peek" 20 (L.peek c)

let lc_rollback () =
  let reg = L.create_registry () in
  let h = L.register reg in
  let c = L.make 5 in
  let v = L.ll c h in
  Alcotest.(check bool) "rollback = sc with old value" true (L.sc c h v);
  Alcotest.(check int) "unchanged" 5 (L.peek c)

let lc_steal_reservation () =
  (* Two handles scripted from one thread: the second ll steals the first
     handle's reservation, so the first sc must fail. *)
  let reg = L.create_registry () in
  let h1 = L.register reg in
  let h2 = L.register reg in
  let c = L.make 1 in
  Alcotest.(check int) "h1 reserves" 1 (L.ll c h1);
  Alcotest.(check int) "h2 reads through h1's mark and steals" 1 (L.ll c h2);
  Alcotest.(check bool) "h1 lost its reservation" false (L.sc c h1 10);
  Alcotest.(check bool) "h2 still holds it" true (L.sc c h2 20);
  Alcotest.(check int) "h2's write" 20 (L.peek c)

let lc_peek_through_mark () =
  let reg = L.create_registry () in
  let h = L.register reg in
  let c = L.make 7 in
  ignore (L.ll c h);
  (* cell now holds h's mark *)
  Alcotest.(check int) "peek reads the placeholder" 7 (L.peek c);
  ignore (L.sc c h 7)

let lc_registry_recycles () =
  let reg = L.create_registry () in
  let h1 = L.register reg in
  Alcotest.(check int) "one var" 1 (L.registered_count reg);
  L.deregister h1;
  let h2 = L.register reg in
  Alcotest.(check int) "recycled, not grown" 1 (L.registered_count reg);
  L.deregister h2

let lc_registry_grows_under_simultaneity () =
  let reg = L.create_registry () in
  let h1 = L.register reg in
  let h2 = L.register reg in
  let h3 = L.register reg in
  Alcotest.(check int) "three simultaneous vars" 3 (L.registered_count reg);
  Alcotest.(check int) "all owned" 3 (L.owned_count reg);
  L.deregister h1;
  L.deregister h2;
  L.deregister h3;
  Alcotest.(check int) "none owned" 0 (L.owned_count reg)

let lc_reregister_keeps_free_var () =
  let reg = L.create_registry () in
  let h = L.register reg in
  let c = L.make 0 in
  ignore (L.ll c h);
  ignore (L.sc c h 1);
  L.reregister h;
  (* No reader pinned the var: the registry must not have grown. *)
  Alcotest.(check int) "kept" 1 (L.registered_count reg);
  L.deregister h

let lc_reregister_abandons_pinned_var () =
  let reg = L.create_registry () in
  let h1 = L.register reg in
  let h2 = L.register reg in
  let c = L.make 1 in
  (* h1 reserves; h2's ll transiently pins h1's var.  Simulate a reader
     that is still pinned by interleaving manually: we reproduce the pin by
     reserving then having h2 read through the mark while we freeze the
     decrement — the public API doesn't expose the mid-point, so instead we
     verify the conservative behaviour: after h2 steals, h1's refcount is
     back to 1 and reregister keeps the var. *)
  ignore (L.ll c h1);
  ignore (L.ll c h2);
  ignore (L.sc c h2 1);
  L.reregister h1;
  Alcotest.(check int) "no growth when unpinned" 2 (L.registered_count reg);
  L.deregister h1;
  L.deregister h2

let lc_value_transfer_through_marks () =
  (* A chain of steals must propagate the logical value unchanged. *)
  let reg = L.create_registry () in
  let handles = List.init 5 (fun _ -> L.register reg) in
  let c = L.make 42 in
  List.iter
    (fun h -> Alcotest.(check int) "value survives steal chain" 42 (L.ll c h))
    handles;
  (* Last handle holds the reservation; restore. *)
  (match List.rev handles with
  | last :: _ -> ignore (L.sc c last 42)
  | [] -> assert false);
  Alcotest.(check int) "restored" 42 (L.peek c)

let lc_unsafe_set_destroys_reservation () =
  let reg = L.create_registry () in
  let h = L.register reg in
  let c = L.make 1 in
  ignore (L.ll c h);
  L.unsafe_set c 99;
  Alcotest.(check bool) "reservation destroyed" false (L.sc c h 2);
  Alcotest.(check int) "unsafe value stands" 99 (L.peek c)

let lc_concurrent_counter () =
  (* The simulated LL/SC implements an exact counter across domains, with
     per-domain handles and paper-mandated re-registration. *)
  let reg = L.create_registry () in
  let c = L.make 0 in
  let per_domain = 5_000 and domains = 4 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            let h = L.register reg in
            for _ = 1 to per_domain do
              L.reregister h;
              let rec incr () =
                let v = L.ll c h in
                if not (L.sc c h (v + 1)) then incr ()
              in
              incr ()
            done;
            L.deregister h))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "exact count" (per_domain * domains) (L.peek c);
  Alcotest.(check bool)
    "registry bounded by max concurrency" true
    (L.registered_count reg <= domains)

(* --- Software MCAS --- *)

module Mcas = Nbq_primitives.Mcas

let mcas_basic () =
  let a = Mcas.make 1 and b = Mcas.make 2 in
  let sa = Mcas.read a and sb = Mcas.read b in
  Alcotest.(check int) "value a" 1 (Mcas.value sa);
  Alcotest.(check bool) "2-word success" true
    (Mcas.mcas [ (a, sa, 10); (b, sb, 20) ]);
  Alcotest.(check int) "a updated" 10 (Mcas.value (Mcas.read a));
  Alcotest.(check int) "b updated" 20 (Mcas.value (Mcas.read b))

let mcas_stale_snapshot_fails () =
  let a = Mcas.make 1 and b = Mcas.make 2 in
  let sa = Mcas.read a and sb = Mcas.read b in
  ignore (Mcas.mcas [ (a, sa, 5) ]);
  (* a changed *)
  Alcotest.(check bool) "stale a fails whole mcas" false
    (Mcas.mcas [ (a, sa, 10); (b, sb, 20) ]);
  Alcotest.(check int) "b untouched on failure" 2 (Mcas.value (Mcas.read b));
  Alcotest.(check int) "a keeps first write" 5 (Mcas.value (Mcas.read a))

let mcas_all_or_nothing () =
  let cells = List.init 5 (fun i -> Mcas.make i) in
  let snaps = List.map Mcas.read cells in
  let specs = List.map2 (fun c s -> (c, s, Mcas.value s + 100)) cells snaps in
  Alcotest.(check bool) "5-word success" true (Mcas.mcas specs);
  List.iteri
    (fun i c ->
      Alcotest.(check int) "all applied" (i + 100) (Mcas.value (Mcas.read c)))
    cells;
  (* Now poison one snapshot: nothing may change. *)
  let snaps2 = List.map Mcas.read cells in
  let specs2 = List.map2 (fun c s -> (c, s, 0)) cells snaps2 in
  let one = List.nth cells 3 in
  ignore (Mcas.mcas [ (one, List.nth snaps2 3, 999) ]);
  Alcotest.(check bool) "poisoned batch fails" false (Mcas.mcas specs2);
  List.iteri
    (fun i c ->
      let expect = if i = 3 then 999 else i + 100 in
      Alcotest.(check int) "nothing else changed" expect
        (Mcas.value (Mcas.read c)))
    cells

let mcas_validation () =
  (match Mcas.mcas [] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let a = Mcas.make 0 in
  let s = Mcas.read a in
  match Mcas.mcas [ (a, s, 1); (a, s, 2) ] with
  | _ -> Alcotest.fail "expected Invalid_argument for duplicate"
  | exception Invalid_argument _ -> ()

let mcas_single_cas () =
  let a = Mcas.make 7 in
  let s = Mcas.read a in
  Alcotest.(check bool) "cas" true (Mcas.cas a s 8);
  Alcotest.(check bool) "stale cas" false (Mcas.cas a s 9);
  Alcotest.(check int) "value" 8 (Mcas.value (Mcas.read a))

let mcas_concurrent_transfers () =
  (* Bank-transfer invariant: concurrent 2-word MCAS moves between cells
     preserve the sum exactly. *)
  let accounts = Array.init 4 (fun _ -> Mcas.make 1000) in
  let per_domain = 3_000 and domains = 4 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Nbq_primitives.Prng.create ~seed:(100 + d) in
            for _ = 1 to per_domain do
              let i = Nbq_primitives.Prng.int rng 4 in
              let j = (i + 1 + Nbq_primitives.Prng.int rng 3) mod 4 in
              let rec attempt () =
                let si = Mcas.read accounts.(i)
                and sj = Mcas.read accounts.(j) in
                let amount = 1 + Nbq_primitives.Prng.int rng 10 in
                if
                  not
                    (Mcas.mcas
                       [
                         (accounts.(i), si, Mcas.value si - amount);
                         (accounts.(j), sj, Mcas.value sj + amount);
                       ])
                then attempt ()
              in
              attempt ()
            done))
  in
  List.iter Domain.join workers;
  let total =
    Array.fold_left (fun acc c -> acc + Mcas.value (Mcas.read c)) 0 accounts
  in
  Alcotest.(check int) "sum conserved" 4000 total

(* --- Randomized model-based tests (single-threaded semantics) --- *)

type llsc_op = Get | Set of int | Ll | Sc of int | Vl

let llsc_op_gen =
  QCheck.Gen.(
    oneof
      [
        return Get;
        map (fun v -> Set v) (int_bound 100);
        return Ll;
        map (fun v -> Sc v) (int_bound 100);
        return Vl;
      ])

let llsc_op_print = function
  | Get -> "Get"
  | Set v -> Printf.sprintf "Set %d" v
  | Ll -> "Ll"
  | Sc v -> Printf.sprintf "Sc %d" v
  | Vl -> "Vl"

let qcheck_llsc_model =
  QCheck.Test.make ~count:500 ~name:"llsc agrees with register+reservation model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map llsc_op_print ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) llsc_op_gen))
    (fun ops ->
      let cell = Llsc.make 0 in
      let link = ref (Llsc.ll cell) in
      ignore (Llsc.sc cell !link 0);
      (* Model: the value, plus whether the saved link is still valid. *)
      let value = ref 0 and valid = ref false in
      Llsc.set cell 0;
      value := 0;
      List.for_all
        (fun op ->
          match op with
          | Get -> Llsc.get cell = !value
          | Set v ->
              Llsc.set cell v;
              value := v;
              valid := false;
              true
          | Ll ->
              link := Llsc.ll cell;
              let ok = Llsc.value !link = !value in
              valid := true;
              ok
          | Sc v ->
              let real = Llsc.sc cell !link v in
              let expected = !valid in
              if expected then begin
                value := v;
                valid := false
              end;
              real = expected
          | Vl -> Llsc.vl cell !link = !valid)
        ops)

type lc_op = LcLl | LcSc of int | LcPeek | LcUnsafe of int

let lc_op_gen =
  QCheck.Gen.(
    oneof
      [
        return LcLl;
        map (fun v -> LcSc v) (int_bound 100);
        return LcPeek;
        map (fun v -> LcUnsafe v) (int_bound 100);
      ])

let lc_op_print = function
  | LcLl -> "Ll"
  | LcSc v -> Printf.sprintf "Sc %d" v
  | LcPeek -> "Peek"
  | LcUnsafe v -> Printf.sprintf "Unsafe %d" v

let qcheck_llsc_cas_model =
  QCheck.Test.make ~count:500
    ~name:"llsc_cas agrees with register+reservation model"
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map lc_op_print ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) lc_op_gen))
    (fun ops ->
      let reg = L.create_registry () in
      let h = L.register reg in
      let cell = L.make 0 in
      (* Model: the logical value, plus whether our mark is installed. *)
      let value = ref 0 and reserved = ref false in
      List.for_all
        (fun op ->
          match op with
          | LcLl ->
              let got = L.ll cell h in
              reserved := true;
              got = !value
          | LcSc v ->
              let real = L.sc cell h v in
              let expected = !reserved in
              if expected then begin
                value := v;
                reserved := false
              end;
              real = expected
          | LcPeek -> L.peek cell = !value
          | LcUnsafe v ->
              L.unsafe_set cell v;
              value := v;
              reserved := false;
              true)
        ops)

let () =
  Alcotest.run "primitives"
    [
      ( "prng",
        [
          quick "deterministic" prng_deterministic;
          quick "seed sensitivity" prng_seed_sensitivity;
          quick "int bounds" prng_int_bounds;
          quick "int invalid bound" prng_int_invalid;
          quick "float range" prng_float_range;
          quick "split independence" prng_split_independent;
          quick "bool mixes" prng_bool_mixes;
          quick "domain-local stable" prng_domain_local_stable;
          slow "domain-local distinct" prng_domain_local_distinct;
        ] );
      ( "backoff",
        [
          quick "exponential growth" backoff_growth;
          quick "reset" backoff_reset;
          quick "validation" backoff_validation;
          quick "no jitter: spin equals envelope" backoff_no_jitter_exact;
          quick "jitter stays within bounds" backoff_jitter_bounds;
        ] );
      ( "barrier",
        [
          slow "releases all" barrier_releases_all;
          slow "reusable across rounds" barrier_reusable;
          quick "validation" barrier_validation;
        ] );
      ( "llsc",
        [
          quick "basic" llsc_basic;
          quick "sc fails after write" llsc_sc_fails_after_write;
          quick "competing sc" llsc_sc_fails_after_other_sc;
          quick "ABA immunity" llsc_aba_immune;
          quick "validate" llsc_vl;
          quick "sc consumes reservation" llsc_sc_only_once;
          slow "concurrent counter" llsc_concurrent_counter;
          quick "weak failure rate" llsc_weak_failure_rate;
          quick "weak zero rate" llsc_weak_zero_rate_is_ideal;
          quick "weak rate clamped" llsc_weak_rate_clamped;
          QCheck_alcotest.to_alcotest qcheck_llsc_model;
        ] );
      ( "llsc-cas",
        [
          quick "basic ll/sc" lc_basic_ll_sc;
          quick "rollback" lc_rollback;
          quick "reservation stealing" lc_steal_reservation;
          quick "peek through mark" lc_peek_through_mark;
          quick "registry recycles" lc_registry_recycles;
          quick "registry grows under simultaneity"
            lc_registry_grows_under_simultaneity;
          quick "reregister keeps free var" lc_reregister_keeps_free_var;
          quick "reregister after steal" lc_reregister_abandons_pinned_var;
          quick "value transfer through steal chain"
            lc_value_transfer_through_marks;
          quick "unsafe_set destroys reservation"
            lc_unsafe_set_destroys_reservation;
          slow "concurrent counter + space adaptivity" lc_concurrent_counter;
          QCheck_alcotest.to_alcotest qcheck_llsc_cas_model;
        ] );
      ( "mcas",
        [
          quick "basic 2-word" mcas_basic;
          quick "stale snapshot fails" mcas_stale_snapshot_fails;
          quick "all-or-nothing over 5 words" mcas_all_or_nothing;
          quick "validation" mcas_validation;
          quick "single-word cas" mcas_single_cas;
          slow "concurrent transfers conserve sum" mcas_concurrent_transfers;
        ] );
    ]
