(* Tests for the benchmark harness: registry, stats, tables, workload,
   runner. *)

open Nbq_harness

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let feq = Alcotest.float 1e-9

(* --- Registry --- *)

let registry_names_unique () =
  let names = Registry.names () in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let registry_find_roundtrip () =
  List.iter
    (fun (impl : Registry.impl) ->
      let found = Registry.find impl.Registry.name in
      Alcotest.(check string) "found itself" impl.Registry.name
        found.Registry.name)
    Registry.all

let registry_find_unknown () =
  match Registry.find "no-such-queue" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let registry_concurrent_excludes_sequential () =
  Alcotest.(check bool) "seq-ring not in concurrent" false
    (List.exists
       (fun (i : Registry.impl) -> i.Registry.name = "seq-ring")
       Registry.concurrent);
  Alcotest.(check int) "all = concurrent + seq"
    (List.length Registry.all)
    (List.length Registry.concurrent + 1);
  Alcotest.(check int) "twenty-nine implementations" 29
    (List.length Registry.all)

let registry_instances_independent () =
  let impl = Registry.find "evequoz-cas" in
  let a = impl.Registry.create ~capacity:8 in
  let b = impl.Registry.create ~capacity:8 in
  ignore (a.Registry.enqueue { Registry.tag = 1 });
  Alcotest.(check int) "b unaffected" 0 (b.Registry.length ());
  Alcotest.(check int) "a has one" 1 (a.Registry.length ())

let registry_expected_members () =
  List.iter
    (fun name -> ignore (Registry.find name))
    [
      "evequoz-llsc"; "evequoz-cas"; "evequoz-bw"; "evequoz-llsc-weak"; "shann";
      "tsigas-zhang"; "valois-dcas"; "ms-gc"; "ms-hp-sorted"; "ms-hp-unsorted"; "ms-ebr";
      "ms-doherty"; "herlihy-wing"; "lms-optimistic"; "two-lock";
      "lock-ring"; "seq-ring"; "evequoz-cas-shard4"; "evequoz-cas-shard8";
      "evequoz-bw-shard4"; "evequoz-seg"; "evequoz-seg-bw";
      "evequoz-seg-shard1"; "evequoz-seg-shard4"; "scq"; "scq-d"; "scq-wcq";
      "scq-shard4"; "scq-blocking";
    ]

(* --- Stats --- *)

let stats_known_values () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.check feq "mean" 2.5 s.Stats.mean;
  Alcotest.check feq "min" 1.0 s.Stats.min;
  Alcotest.check feq "max" 4.0 s.Stats.max;
  Alcotest.check feq "median" 2.5 s.Stats.median;
  Alcotest.check (Alcotest.float 1e-6) "stddev" 1.2909944487 s.Stats.stddev;
  Alcotest.check feq "p95" 4.0 s.Stats.p95;
  Alcotest.check feq "p99" 4.0 s.Stats.p99;
  Alcotest.(check int) "n" 4 s.Stats.n

let stats_percentiles () =
  (* 1..100: nearest-rank on the sorted array (rank = round(q * (n-1))). *)
  let s = Stats.summarize (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.check feq "p95" 95.0 s.Stats.p95;
  Alcotest.check feq "p99" 99.0 s.Stats.p99;
  (* Order must not matter: Float.compare sorts, not polymorphic compare. *)
  let r = Stats.summarize (List.init 100 (fun i -> float_of_int (100 - i))) in
  Alcotest.check feq "p95 order-independent" 95.0 r.Stats.p95

let stats_single_sample () =
  let s = Stats.summarize [ 7.0 ] in
  Alcotest.check feq "mean" 7.0 s.Stats.mean;
  Alcotest.check feq "stddev" 0.0 s.Stats.stddev;
  Alcotest.check feq "median" 7.0 s.Stats.median

let stats_odd_median () =
  let s = Stats.summarize [ 5.0; 1.0; 3.0 ] in
  Alcotest.check feq "median" 3.0 s.Stats.median

let stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize []))

let stats_normalize () =
  Alcotest.check feq "normalize" 2.0 (Stats.normalize ~base:2.0 4.0);
  Alcotest.(check bool) "zero base is nan" true
    (Float.is_nan (Stats.normalize ~base:0.0 1.0))

let qcheck_stats_invariants =
  QCheck.Test.make ~count:300 ~name:"summary invariants"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.n = List.length xs
      && s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.max
      && s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9
      && s.Stats.median <= s.Stats.p95
      && s.Stats.p95 <= s.Stats.p99
      && s.Stats.p99 <= s.Stats.max
      && s.Stats.stddev >= 0.0)

let qcheck_stats_shift =
  QCheck.Test.make ~count:300 ~name:"mean is shift-equivariant, stddev invariant"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 30) (float_range (-100.0) 100.0))
        (float_range (-50.0) 50.0))
    (fun (xs, delta) ->
      let a = Stats.summarize xs in
      let b = Stats.summarize (List.map (fun x -> x +. delta) xs) in
      Float.abs (b.Stats.mean -. (a.Stats.mean +. delta)) < 1e-6
      && Float.abs (b.Stats.stddev -. a.Stats.stddev) < 1e-6)

(* --- Table --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "threads"; "a"; "b" ] in
  Table.add_row t [ "1"; "0.5"; "0.25" ];
  Table.add_row t [ "2"; "1.5"; "1.25" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 4 && String.sub out 0 4 = "demo");
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %s" needle)
        true (contains out needle))
    [ "threads"; "0.25"; "1.5" ]

let table_csv () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "a,b"; "c" ];
  let csv = Table.render_csv t in
  Alcotest.(check string) "csv with quoting" "x,y\n\"a,b\",c\n" csv

let table_cell_count_checked () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  match Table.add_row t [ "only-one" ] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Latency --- *)

let latency_basic () =
  let r = Latency.recorder ~capacity:10 in
  List.iter (Latency.record r) [ 0.001; 0.002; 0.003; 0.004; 0.005 ];
  let s = Latency.summarize [ r ] in
  Alcotest.(check int) "samples" 5 s.Latency.samples;
  Alcotest.check feq "p50" 0.003 s.Latency.p50;
  Alcotest.check feq "max" 0.005 s.Latency.max;
  Alcotest.check (Alcotest.float 1e-9) "mean" 0.003 s.Latency.mean

let latency_drop_counting () =
  let r = Latency.recorder ~capacity:2 in
  List.iter (Latency.record r) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "dropped" 2 (Latency.dropped r);
  Alcotest.(check int) "kept" 2 (Latency.summarize [ r ]).Latency.samples

let latency_merge () =
  let a = Latency.recorder ~capacity:4 and b = Latency.recorder ~capacity:4 in
  Latency.record a 1.0;
  Latency.record b 3.0;
  Latency.record b 2.0;
  let s = Latency.summarize [ a; b ] in
  Alcotest.(check int) "merged" 3 s.Latency.samples;
  Alcotest.check feq "p50 across recorders" 2.0 s.Latency.p50

let latency_percentile_unit () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check feq "p0" 1.0 (Latency.percentile sorted 0.0);
  Alcotest.check feq "p100" 5.0 (Latency.percentile sorted 1.0);
  Alcotest.check feq "p50" 3.0 (Latency.percentile sorted 0.5);
  Alcotest.check feq "p75 nearest-rank" 4.0 (Latency.percentile sorted 0.75)

let latency_time_records () =
  let r = Latency.recorder ~capacity:4 in
  let x = Latency.time r (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 x;
  let s = Latency.summarize [ r ] in
  Alcotest.(check int) "one sample" 1 s.Latency.samples;
  Alcotest.(check bool) "nonnegative" true (s.Latency.max >= 0.0)

let latency_empty_raises () =
  match Latency.summarize [ Latency.recorder ~capacity:1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Ascii_plot --- *)

let plot_basic () =
  let out =
    Ascii_plot.render ~title:"demo plot" ~x_label:"threads" ~y_label:"s"
      [
        { Ascii_plot.label = "alpha"; points = [ (1.0, 0.1); (2.0, 0.4) ] };
        { Ascii_plot.label = "beta"; points = [ (1.0, 0.3); (2.0, 0.2) ] };
      ]
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("plot contains " ^ needle) true (contains out needle))
    [ "demo plot"; "alpha"; "beta"; "threads"; "*"; "+" ]

let plot_no_data () =
  let out =
    Ascii_plot.render ~title:"empty" ~x_label:"x" ~y_label:"y"
      [ { Ascii_plot.label = "nothing"; points = [] } ]
  in
  Alcotest.(check bool) "placeholder" true (contains out "(no data)")

let plot_single_point () =
  (* Degenerate spans must not divide by zero. *)
  let out =
    Ascii_plot.render ~title:"dot" ~x_label:"x" ~y_label:"y"
      [ { Ascii_plot.label = "p"; points = [ (5.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "marker drawn" true (contains out "*")

let plot_too_small () =
  match
    Ascii_plot.render ~width:3 ~height:2 ~title:"t" ~x_label:"x" ~y_label:"y"
      []
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let plot_marker_cycle () =
  let series =
    List.init 10 (fun i ->
        { Ascii_plot.label = Printf.sprintf "s%d" i; points = [ (float_of_int i, 1.0) ] })
  in
  let out = Ascii_plot.render ~title:"many" ~x_label:"x" ~y_label:"y" series in
  (* 10 series with an 8-marker alphabet: markers cycle, legend lists all. *)
  Alcotest.(check bool) "legend has s9" true (contains out "s9")

(* --- Workload --- *)

let workload_paper_config () =
  let c = Workload.paper_config in
  Alcotest.(check int) "iterations" 100_000 c.Workload.iterations;
  Alcotest.(check int) "enq batch" 5 c.Workload.enqueue_batch;
  Alcotest.(check int) "deq batch" 5 c.Workload.dequeue_batch

let workload_scaled () =
  let c = Workload.scaled_config ~scale:0.01 in
  Alcotest.(check int) "scaled iterations" 1_000 c.Workload.iterations;
  let tiny = Workload.scaled_config ~scale:0.0 in
  Alcotest.(check int) "never below 1" 1 tiny.Workload.iterations

let workload_min_capacity () =
  let c = Workload.paper_config in
  let cap = Workload.min_capacity c ~threads:4 in
  Alcotest.(check bool) "covers in-flight items" true (cap >= 40);
  Alcotest.(check int) "power of two" 0 (cap land (cap - 1))

let workload_runs_to_completion () =
  let impl = Registry.find "lock-ring" in
  let q = impl.Registry.create ~capacity:64 in
  let cfg = { Workload.iterations = 200; enqueue_batch = 5; dequeue_batch = 5 } in
  let r = Workload.run_thread cfg ~thread:0 q in
  Alcotest.(check bool) "nonnegative time" true (r.Workload.seconds >= 0.0);
  Alcotest.(check int) "queue drained" 0 (q.Registry.length ());
  Alcotest.(check int) "no empty retries single-threaded" 0
    r.Workload.empty_retries

let workload_batched_matches_single_accounting () =
  let impl = Registry.find "lock-ring" in
  let q = impl.Registry.create ~capacity:64 in
  let cfg =
    { Workload.iterations = 200; enqueue_batch = 5; dequeue_batch = 5 }
  in
  Alcotest.(check int) "ledger = iterations * (eb + db)" 2_000
    (Workload.items_per_thread cfg);
  let batched = Workload.run_thread_batched cfg ~thread:0 q in
  Alcotest.(check int) "batched items pinned"
    (Workload.items_per_thread cfg)
    batched.Workload.items;
  Alcotest.(check int) "queue drained" 0 (q.Registry.length ());
  let single = Workload.run_thread cfg ~thread:0 q in
  Alcotest.(check int) "same ledger as single-op run" single.Workload.items
    batched.Workload.items

(* --- Runner --- *)

let runner_measures () =
  let impl = Registry.find "evequoz-cas" in
  let cfg =
    {
      Runner.threads = 3;
      runs = 2;
      workload = { Workload.iterations = 300; enqueue_batch = 5; dequeue_batch = 5 };
      capacity = None;
    }
  in
  let m = Runner.measure impl cfg in
  Alcotest.(check string) "name" "evequoz-cas" m.Runner.impl_name;
  Alcotest.(check int) "runs recorded" 2 (List.length m.Runner.per_run_seconds);
  Alcotest.(check bool) "positive time" true (m.Runner.summary.Stats.mean > 0.0)

let runner_batched_item_accounting () =
  let impl = Registry.find "evequoz-cas" in
  let cfg =
    {
      Runner.threads = 2;
      runs = 2;
      workload = { Workload.iterations = 50; enqueue_batch = 3; dequeue_batch = 3 };
      capacity = None;
    }
  in
  let m = Runner.measure ~batched:true impl cfg in
  Alcotest.(check int) "items = runs * threads * iterations * (eb + db)"
    (2 * 2 * 50 * (3 + 3))
    m.Runner.items

(* One timed batch call must account k histogram samples — totals count
   items, never calls — so batched and single-op latency totals stay
   comparable.  Single-threaded with ample capacity, the counts are
   exact. *)
let runner_batched_histogram_counts_items () =
  let impl = Registry.find "evequoz-cas" in
  let metrics = Nbq_obs.Metrics.create () in
  let iterations = 100 and eb = 4 and db = 4 in
  let cfg =
    {
      Runner.threads = 1;
      runs = 1;
      workload = { Workload.iterations; enqueue_batch = eb; dequeue_batch = db };
      capacity = None;
    }
  in
  let m = Runner.measure ~metrics ~batched:true impl cfg in
  match m.Runner.metrics with
  | None -> Alcotest.fail "expected a metrics snapshot"
  | Some s ->
      Alcotest.(check int) "enq histogram total = items enqueued"
        (iterations * eb)
        (Nbq_obs.Histogram.total s.Nbq_obs.Metrics.enq);
      Alcotest.(check int) "deq histogram total = items dequeued"
        (iterations * db)
        (Nbq_obs.Histogram.total s.Nbq_obs.Metrics.deq)

let runner_rejects_zero_threads () =
  let impl = Registry.find "evequoz-cas" in
  let cfg =
    {
      Runner.threads = 0;
      runs = 1;
      workload = Workload.scaled_config ~scale:0.001;
      capacity = None;
    }
  in
  match Runner.measure impl cfg with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let runner_all_concurrent_impls_smoke () =
  (* Every concurrent implementation completes a small multi-domain run. *)
  let cfg =
    {
      Runner.threads = 4;
      runs = 1;
      workload = { Workload.iterations = 100; enqueue_batch = 5; dequeue_batch = 5 };
      capacity = None;
    }
  in
  List.iter
    (fun impl ->
      let m = Runner.measure impl cfg in
      Alcotest.(check bool)
        (impl.Registry.name ^ " ran")
        true
        (m.Runner.summary.Stats.mean >= 0.0))
    Registry.concurrent

let () =
  Alcotest.run "harness"
    [
      ( "registry",
        [
          quick "unique names" registry_names_unique;
          quick "find roundtrip" registry_find_roundtrip;
          quick "find unknown" registry_find_unknown;
          quick "concurrent excludes sequential"
            registry_concurrent_excludes_sequential;
          quick "instances independent" registry_instances_independent;
          quick "expected members present" registry_expected_members;
        ] );
      ( "stats",
        [
          quick "known values" stats_known_values;
          quick "single sample" stats_single_sample;
          quick "odd median" stats_odd_median;
          quick "percentiles" stats_percentiles;
          quick "empty raises" stats_empty_raises;
          quick "normalize" stats_normalize;
          QCheck_alcotest.to_alcotest qcheck_stats_invariants;
          QCheck_alcotest.to_alcotest qcheck_stats_shift;
        ] );
      ( "table",
        [
          quick "render" table_render;
          quick "csv quoting" table_csv;
          quick "cell count checked" table_cell_count_checked;
        ] );
      ( "latency",
        [
          quick "basic summary" latency_basic;
          quick "drop counting" latency_drop_counting;
          quick "merge recorders" latency_merge;
          quick "percentile unit" latency_percentile_unit;
          quick "time records" latency_time_records;
          quick "empty raises" latency_empty_raises;
        ] );
      ( "ascii-plot",
        [
          quick "basic render" plot_basic;
          quick "no data" plot_no_data;
          quick "single point" plot_single_point;
          quick "too small" plot_too_small;
          quick "marker cycle" plot_marker_cycle;
        ] );
      ( "workload",
        [
          quick "paper config" workload_paper_config;
          quick "scaled config" workload_scaled;
          quick "min capacity" workload_min_capacity;
          quick "runs to completion" workload_runs_to_completion;
          quick "batched run matches single-op accounting"
            workload_batched_matches_single_accounting;
        ] );
      ( "runner",
        [
          slow "measures" runner_measures;
          slow "batched item accounting" runner_batched_item_accounting;
          slow "batch histograms count items"
            runner_batched_histogram_counts_items;
          quick "rejects zero threads" runner_rejects_zero_threads;
          slow "all concurrent impls smoke" runner_all_concurrent_impls_smoke;
        ] );
    ]
