(* A conformance battery instantiated for every queue implementation in the
   registry: one shared body of test logic, many distinct systems under
   test.  Sequential semantics, model-based randomized tests, multi-domain
   transfer tests and linearizability stress. *)

open Nbq_harness

let payload tag = { Registry.tag }
let tag_of (p : Registry.payload) = p.Registry.tag

let fresh (impl : Registry.impl) ?(capacity = 8) () =
  impl.Registry.create ~capacity

(* Concurrent tests honour an implementation's bounded-delay assumption
   (Tsigas-Zhang: no operation delayed across two ring wraps) by sizing
   the ring so that two wraps take thousands of operations -- on this
   single-core box a preempted domain easily sleeps through a 64-slot
   ring's double wrap, which is exactly the published failure mode the
   paper's SS3 criticises.  See DESIGN.md SS7a. *)
let conc_capacity (impl : Registry.impl) requested =
  if impl.Registry.bounded_delay_assumption then max requested 2048
  else requested

let enq (q : Registry.instance) v = q.Registry.enqueue (payload v)
let deq (q : Registry.instance) = Option.map tag_of (q.Registry.dequeue ())
let len (q : Registry.instance) = q.Registry.length ()

let check_enq q v =
  Alcotest.(check bool) (Printf.sprintf "enqueue %d accepted" v) true (enq q v)

let check_deq q expected =
  Alcotest.(check (option int)) "dequeue" expected (deq q)

(* --- Sequential cases --- *)

let test_empty_dequeue impl () =
  let q = fresh impl () in
  check_deq q None;
  check_deq q None

let test_singleton impl () =
  let q = fresh impl () in
  check_enq q 42;
  check_deq q (Some 42);
  check_deq q None

let test_fifo_order impl () =
  let q = fresh impl ~capacity:128 () in
  for i = 1 to 100 do
    check_enq q i
  done;
  for i = 1 to 100 do
    check_deq q (Some i)
  done;
  check_deq q None

let test_interleaved impl () =
  let q = fresh impl () in
  check_enq q 1;
  check_enq q 2;
  check_deq q (Some 1);
  check_enq q 3;
  check_deq q (Some 2);
  check_deq q (Some 3);
  check_deq q None

let test_wraparound impl () =
  (* Push ten full revolutions through a small ring. *)
  let q = fresh impl ~capacity:8 () in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 20 do
    for _ = 1 to 4 do
      check_enq q !next_in;
      incr next_in
    done;
    for _ = 1 to 4 do
      check_deq q (Some !next_out);
      incr next_out
    done
  done;
  check_deq q None

let test_length impl () =
  let q = fresh impl ~capacity:16 () in
  Alcotest.(check int) "empty" 0 (len q);
  check_enq q 1;
  check_enq q 2;
  Alcotest.(check int) "two" 2 (len q);
  ignore (deq q);
  Alcotest.(check int) "one" 1 (len q);
  ignore (deq q);
  Alcotest.(check int) "zero again" 0 (len q)

let test_drain_refill impl () =
  let q = fresh impl () in
  for round = 0 to 4 do
    let base = round * 10 in
    for i = 0 to 5 do
      check_enq q (base + i)
    done;
    for i = 0 to 5 do
      check_deq q (Some (base + i))
    done;
    check_deq q None
  done

let test_paper_pattern_sequential impl () =
  (* 100 iterations of 5 enq + 5 deq, the paper's per-thread loop. *)
  let q = fresh impl ~capacity:16 () in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 100 do
    for _ = 1 to 5 do
      check_enq q !next_in;
      incr next_in
    done;
    for _ = 1 to 5 do
      check_deq q (Some !next_out);
      incr next_out
    done
  done;
  Alcotest.(check int) "drained" 0 (len q)

(* --- Bounded-only cases --- *)

let test_full_rejection impl () =
  let q = fresh impl ~capacity:4 () in
  for i = 1 to 4 do
    check_enq q i
  done;
  Alcotest.(check bool) "full" false (enq q 5);
  Alcotest.(check bool) "still full" false (enq q 6);
  check_deq q (Some 1);
  Alcotest.(check bool) "space again" true (enq q 5);
  check_deq q (Some 2);
  check_deq q (Some 3);
  check_deq q (Some 4);
  check_deq q (Some 5);
  check_deq q None

let test_full_preserves_order impl () =
  let q = fresh impl ~capacity:4 () in
  for i = 1 to 4 do
    check_enq q i
  done;
  ignore (enq q 99);
  (* rejected: must not corrupt *)
  for i = 1 to 4 do
    check_deq q (Some i)
  done;
  check_deq q None

let test_full_empty_cycles impl () =
  let q = fresh impl ~capacity:2 () in
  for round = 1 to 50 do
    check_enq q round;
    check_enq q (round + 1000);
    Alcotest.(check bool) "full at 2" false (enq q (-1));
    check_deq q (Some round);
    check_deq q (Some (round + 1000));
    check_deq q None
  done

(* --- Randomized model-based (qcheck) --- *)

module Model = struct
  (* Reference bounded FIFO. *)
  type t = { mutable items : int list; capacity : int } (* head first *)

  let create capacity = { items = []; capacity }

  let enqueue m v =
    if List.length m.items >= m.capacity then false
    else begin
      m.items <- m.items @ [ v ];
      true
    end

  let dequeue m =
    match m.items with
    | [] -> None
    | x :: rest ->
        m.items <- rest;
        Some x
end

let qcheck_model impl =
  let open QCheck in
  Test.make ~count:200 ~name:(impl.Registry.name ^ " agrees with model")
    (list (pair bool (int_bound 1000)))
    (fun ops ->
      let capacity = 8 in
      let q = fresh impl ~capacity () in
      let m = Model.create capacity in
      List.for_all
        (fun (is_enq, v) ->
          if is_enq then enq q v = Model.enqueue m v
          else deq q = Model.dequeue m)
        ops)

let qcheck_conservation impl =
  let open QCheck in
  Test.make ~count:100
    ~name:(impl.Registry.name ^ " conserves items")
    (list (pair bool (int_bound 1000)))
    (fun ops ->
      let q = fresh impl ~capacity:16 () in
      let enqueued = ref 0 and dequeued = ref 0 in
      List.iter
        (fun (is_enq, v) ->
          if is_enq then begin
            if enq q v then incr enqueued
          end
          else match deq q with Some _ -> incr dequeued | None -> ())
        ops;
      !enqueued - !dequeued = len q)

(* --- Concurrent cases --- *)

let transfer_test ?(check_order = true) impl ~producers ~consumers
    ~per_producer () =
  let capacity = conc_capacity impl 64 in
  let q = fresh impl ~capacity () in
  let barrier = Nbq_primitives.Barrier.create ~parties:(producers + consumers) in
  let sinks = Array.init consumers (fun _ -> ref []) in
  let total = producers * per_producer in
  let consumed = Atomic.make 0 in
  let prods =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            Nbq_primitives.Barrier.await barrier;
            for i = 0 to per_producer - 1 do
              let v = (p lsl 20) lor i in
              while not (enq q v) do
                Domain.cpu_relax ()
              done
            done))
  in
  let cons =
    List.init consumers (fun c ->
        Domain.spawn (fun () ->
            Nbq_primitives.Barrier.await barrier;
            let sink = sinks.(c) in
            let rec loop () =
              if Atomic.get consumed < total then begin
                (match deq q with
                | Some v ->
                    ignore (Atomic.fetch_and_add consumed 1);
                    sink := v :: !sink
                | None -> Domain.cpu_relax ());
                loop ()
              end
            in
            loop ()))
  in
  List.iter Domain.join prods;
  List.iter Domain.join cons;
  (* Conservation: exactly [total] distinct values received. *)
  let all = List.concat_map (fun s -> !s) (Array.to_list sinks) in
  Alcotest.(check int) "all values received" total (List.length all);
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "no duplicates" total (List.length sorted);
  (* Per-producer order: within one consumer's stream, values from the same
     producer must arrive in increasing sequence order.  Relaxed (sharded)
     queues only promise this per shard, so they skip it. *)
  if check_order then
  Array.iter
    (fun sink ->
      let per_prod = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let p = v lsr 20 and i = v land 0xFFFFF in
          let last = Option.value ~default:max_int (Hashtbl.find_opt per_prod p) in
          Alcotest.(check bool)
            (Printf.sprintf "producer %d order in one consumer" p)
            true (i < last);
          Hashtbl.replace per_prod p i)
        !sink (* reversed: newest first, so indices must decrease *))
    sinks

(* The queue as the lincheck stress driver sees it: single ops plus the
   instance's native batch entry points. *)
let stress_ops (q : Registry.instance) =
  {
    Nbq_lincheck.Stress.enqueue = (fun v -> enq q v);
    dequeue = (fun () -> deq q);
    enqueue_batch = (fun vs -> q.Registry.enqueue_batch (Array.map payload vs));
    dequeue_batch = (fun k -> List.map tag_of (q.Registry.dequeue_batch k));
  }

let test_lincheck_small ?with_batches impl ~threads ~rounds ~capacity () =
  let make_round () =
    let q = fresh impl ~capacity () in
    fun _thread -> stress_ops q
  in
  (* The sequential spec's bound must match the implementation's actual
     semantics: unbounded queues never reject. *)
  let spec_capacity = if impl.Registry.bounded then Some capacity else None in
  match
    Nbq_lincheck.Stress.check_small_rounds ?with_batches ~rounds ~threads
      ~ops_per_thread:4 ?capacity:spec_capacity make_round
  with
  | Nbq_lincheck.Checker.Ok -> ()
  | Nbq_lincheck.Checker.Violation msg -> Alcotest.fail msg

let test_big_run impl ~threads () =
  let q = fresh impl ~capacity:(conc_capacity impl 4096) () in
  match
    Nbq_lincheck.Stress.check_big_run ~with_batches:true
      ~relaxed_order:impl.Registry.relaxed_fifo ~threads ~ops_per_thread:10_000
      ~final_length:(fun () -> len q)
      (fun _thread -> stress_ops q)
  with
  | Nbq_lincheck.Checker.Ok -> ()
  | Nbq_lincheck.Checker.Violation msg -> Alcotest.fail msg

let test_paper_pattern_concurrent impl ~threads () =
  let cfg = { Workload.iterations = 500; enqueue_batch = 5; dequeue_batch = 5 } in
  let capacity = conc_capacity impl (Workload.min_capacity cfg ~threads) in
  let q = fresh impl ~capacity () in
  let barrier = Nbq_primitives.Barrier.create ~parties:threads in
  let domains =
    List.init threads (fun thread ->
        Domain.spawn (fun () ->
            Nbq_primitives.Barrier.await barrier;
            Workload.run_thread cfg ~thread q))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check int) "balanced workload drains the queue" 0 (len q);
  List.iter
    (fun (r : Workload.thread_result) ->
      Alcotest.(check bool) "finite time" true (r.seconds >= 0.0))
    results

(* Short-lived domains in waves: exercises per-domain state (DLS handles,
   hazard records, tag-variable recycling) across domain lifecycles. *)
let test_domain_churn impl () =
  let q = fresh impl ~capacity:(conc_capacity impl 64) () in
  let total = Atomic.make 0 in
  for wave = 0 to 5 do
    let domains =
      List.init 2 (fun worker ->
          Domain.spawn (fun () ->
              let base = (wave * 10_000) + (worker * 5_000) in
              for i = 0 to 299 do
                while not (enq q (base + i)) do
                  Domain.cpu_relax ()
                done;
                let rec drain () =
                  match deq q with
                  | Some _ -> ignore (Atomic.fetch_and_add total 1)
                  | None ->
                      Domain.cpu_relax ();
                      drain ()
                in
                drain ()
              done))
    in
    List.iter Domain.join domains
  done;
  Alcotest.(check int) "all items accounted" (6 * 2 * 300) (Atomic.get total);
  Alcotest.(check int) "queue drained" 0 (len q)

(* Two domains alternate producer/consumer roles across barrier-separated
   phases; per-phase conservation must hold. *)
let test_role_swap impl () =
  let q = fresh impl ~capacity:(conc_capacity impl 64) () in
  let phases = 6 and per_phase = 500 in
  let barrier = Nbq_primitives.Barrier.create ~parties:2 in
  let worker me =
    let received = ref 0 in
    for phase = 0 to phases - 1 do
      Nbq_primitives.Barrier.await barrier;
      let producing = (phase + me) mod 2 = 0 in
      if producing then
        for i = 1 to per_phase do
          while not (enq q ((phase * 100_000) + i)) do
            Domain.cpu_relax ()
          done
        done
      else
        for _ = 1 to per_phase do
          let rec drain () =
            match deq q with
            | Some _ -> incr received
            | None ->
                Domain.cpu_relax ();
                drain ()
          in
          drain ()
        done;
      Nbq_primitives.Barrier.await barrier
    done;
    !received
  in
  let other = Domain.spawn (fun () -> worker 1) in
  let mine = worker 0 in
  let theirs = Domain.join other in
  Alcotest.(check int) "every phase fully drained"
    (phases * per_phase) (mine + theirs);
  Alcotest.(check int) "queue empty at the end" 0 (len q)

(* Bounded queues: oscillate between full and empty under concurrency; the
   full/empty transitions are where the null-ABA lives. *)
let test_burst_oscillation impl () =
  let capacity = 4 in
  let q = fresh impl ~capacity () in
  let rounds = 300 in
  let filler =
    Domain.spawn (fun () ->
        for round = 0 to rounds - 1 do
          for i = 0 to capacity - 1 do
            while not (enq q ((round * 100) + i)) do
              Domain.cpu_relax ()
            done
          done
        done)
  in
  let drained = ref 0 in
  while !drained < rounds * capacity do
    match deq q with
    | Some _ -> incr drained
    | None -> Domain.cpu_relax ()
  done;
  Domain.join filler;
  Alcotest.(check int) "exact count through tiny ring" (rounds * capacity)
    !drained;
  check_deq q None

(* --- Batch entry points --- *)

let test_batch_roundtrip impl () =
  let q = fresh impl ~capacity:64 () in
  let accepted = q.Registry.enqueue_batch (Array.init 10 payload) in
  Alcotest.(check int) "whole batch accepted" 10 accepted;
  Alcotest.(check int) "length counts batch items" 10 (len q);
  let got = List.map tag_of (q.Registry.dequeue_batch 16) in
  Alcotest.(check int) "short batch stops at empty" 10 (List.length got);
  if impl.Registry.relaxed_fifo then
    Alcotest.(check (list int))
      "every item exactly once"
      (List.init 10 Fun.id)
      (List.sort compare got)
  else
    Alcotest.(check (list int)) "batch preserves FIFO" (List.init 10 Fun.id) got;
  Alcotest.(check int) "drained" 0 (len q);
  Alcotest.(check (list int)) "batch dequeue of empty" []
    (List.map tag_of (q.Registry.dequeue_batch 4))

let test_batch_partial_accept impl () =
  (* A batch larger than the remaining capacity is accepted as a prefix. *)
  let q = fresh impl ~capacity:4 () in
  let accepted = q.Registry.enqueue_batch (Array.init 32 payload) in
  Alcotest.(check bool)
    (Printf.sprintf "prefix accepted (got %d)" accepted)
    true
    (accepted >= 4 && accepted < 32);
  Alcotest.(check int) "length matches acceptance" accepted (len q);
  let got = List.map tag_of (q.Registry.dequeue_batch 32) in
  Alcotest.(check int) "everything accepted comes back" accepted
    (List.length got);
  Alcotest.(check (list int))
    "the accepted items are an array prefix"
    (List.init accepted Fun.id)
    (List.sort compare got)

(* --- Relaxed (sharded) cases --- *)

(* Complete drain returns every item exactly once, order unspecified. *)
let test_relaxed_drain impl () =
  let q = fresh impl ~capacity:64 () in
  let n = 40 in
  for i = 1 to n do
    check_enq q i
  done;
  Alcotest.(check int) "length counts all shards" n (len q);
  let rec drain acc = match deq q with Some v -> drain (v :: acc) | None -> acc in
  let got = List.sort compare (drain []) in
  Alcotest.(check (list int))
    "every item exactly once"
    (List.init n (fun i -> i + 1))
    got;
  Alcotest.(check int) "empty after drain" 0 (len q)

(* Length stays a sane bound while domains churn, and is exact once
   quiescent — the documented contract for the sum-of-shards snapshot.

   The [0, capacity + shards] window only holds when each shard's own
   [length] is a counter snapshot (the array family).  Link-based queues
   measure length by walking the node chain between two reads of head and
   tail; a sampler preempted between those reads counts every node churned
   through in the gap, so the walk can overcount without bound (and this
   is inherited, not introduced, by the sharded sum).  For those we only
   pin non-negativity and quiescent exactness. *)
let test_length_under_churn impl () =
  let capacity = conc_capacity impl 64 in
  let q = fresh impl ~capacity () in
  (* A sharded instance rounds capacity up per shard; 64 covers any
     registered shard count with room to spare. *)
  let upper =
    if impl.Registry.family = Registry.Array_based then capacity + 64
    else max_int
  in
  let stop = Atomic.make false in
  let out_of_bounds = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let l = len q in
          if l < 0 || l > upper then
            ignore (Atomic.fetch_and_add out_of_bounds 1);
          Domain.cpu_relax ()
        done)
  in
  let workers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 2_000 do
              let v = (w * 1_000_000) + i in
              while not (enq q v) do
                Domain.cpu_relax ()
              done;
              let rec drain () =
                match deq q with
                | Some _ -> ()
                | None ->
                    Domain.cpu_relax ();
                    drain ()
              in
              drain ()
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join sampler;
  Alcotest.(check int) "length stayed within [0, capacity + shards]" 0
    (Atomic.get out_of_bounds);
  Alcotest.(check int) "exact when quiescent" 0 (len q)

(* --- Assembly --- *)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let sequential_cases impl =
  [
    quick "empty dequeue" (test_empty_dequeue impl);
    quick "singleton" (test_singleton impl);
    quick "fifo order x100" (test_fifo_order impl);
    quick "interleaved" (test_interleaved impl);
    quick "wraparound x10 revolutions" (test_wraparound impl);
    quick "length tracking" (test_length impl);
    quick "drain and refill" (test_drain_refill impl);
    quick "paper pattern (sequential)" (test_paper_pattern_sequential impl);
  ]

let bounded_cases impl =
  [
    quick "full rejection and recovery" (test_full_rejection impl);
    quick "rejected enqueue preserves order" (test_full_preserves_order impl);
    quick "full/empty cycles at capacity 2" (test_full_empty_cycles impl);
  ]

let qcheck_cases impl =
  [
    QCheck_alcotest.to_alcotest (qcheck_model impl);
    QCheck_alcotest.to_alcotest (qcheck_conservation impl);
  ]

let concurrent_cases impl =
  [
    slow "transfer 1p/1c" (transfer_test impl ~producers:1 ~consumers:1 ~per_producer:5_000);
    slow "transfer 2p/2c" (transfer_test impl ~producers:2 ~consumers:2 ~per_producer:2_500);
    slow "transfer 4p/1c" (transfer_test impl ~producers:4 ~consumers:1 ~per_producer:1_000);
    slow "lincheck 2 threads"
      (test_lincheck_small impl ~threads:2 ~rounds:150 ~capacity:64);
    slow "lincheck 3 threads"
      (test_lincheck_small impl ~threads:3 ~rounds:75 ~capacity:64);
    slow "lincheck 2 threads batched"
      (test_lincheck_small ~with_batches:true impl ~threads:2 ~rounds:100
         ~capacity:64);
    slow "fifo properties big run" (test_big_run impl ~threads:4);
    slow "paper pattern 4 domains" (test_paper_pattern_concurrent impl ~threads:4);
    slow "domain churn" (test_domain_churn impl);
    slow "role swap" (test_role_swap impl);
  ]
  @ (if impl.Registry.bounded then
       [ slow "burst full/empty oscillation" (test_burst_oscillation impl) ]
     else
       (* Unbounded queues can't oscillate against a full bound, but their
          length snapshot must still stay sane while the chain (or node
          list) churns, and be exact once quiescent. *)
       [ slow "length bounds under churn" (test_length_under_churn impl) ])
  @
  (* Exercising the full/empty transitions concurrently needs the bounded
     spec, which only bounded implementations honour. *)
  if impl.Registry.bounded then
    [
      slow "lincheck tiny capacity"
        (test_lincheck_small impl ~threads:2 ~rounds:150 ~capacity:2);
    ]
  else []

let batch_cases impl =
  quick "batch roundtrip" (test_batch_roundtrip impl)
  ::
  (if impl.Registry.bounded then
     [ quick "batch partial accept" (test_batch_partial_accept impl) ]
   else [])

(* Sharded queues keep conservation and per-shard FIFO but relax global
   order and single-FIFO linearizability (DESIGN.md §8), so they get the
   count/multiset-based suite instead of the exact-order one.  Per-shard
   order itself is asserted in test_scale.ml, where the shard of origin is
   observable. *)
let relaxed_cases impl =
  [
    quick "empty dequeue" (test_empty_dequeue impl);
    quick "singleton" (test_singleton impl);
    quick "length tracking" (test_length impl);
    quick "relaxed drain (multiset)" (test_relaxed_drain impl);
    QCheck_alcotest.to_alcotest (qcheck_conservation impl);
  ]
  @ batch_cases impl
  @ [
      slow "transfer 1p/1c (conservation)"
        (transfer_test ~check_order:false impl ~producers:1 ~consumers:1
           ~per_producer:5_000);
      slow "transfer 2p/2c (conservation)"
        (transfer_test ~check_order:false impl ~producers:2 ~consumers:2
           ~per_producer:2_500);
      slow "relaxed fifo properties big run" (test_big_run impl ~threads:4);
      slow "length bounds under churn" (test_length_under_churn impl);
      slow "paper pattern 4 domains"
        (test_paper_pattern_concurrent impl ~threads:4);
      slow "domain churn" (test_domain_churn impl);
      slow "role swap" (test_role_swap impl);
    ]
  @
  if impl.Registry.bounded then
    [ slow "burst full/empty oscillation" (test_burst_oscillation impl) ]
  else []

let cases (impl : Registry.impl) =
  if impl.Registry.relaxed_fifo then relaxed_cases impl
  else
    let seq = sequential_cases impl in
    let bounded = if impl.Registry.bounded then bounded_cases impl else [] in
    let qc =
      (* The model assumes bounded semantics; unbounded queues never reject,
         which the model (cap 8) would.  Run model tests on bounded impls
         only; conservation runs everywhere. *)
      if impl.Registry.bounded then qcheck_cases impl
      else [ QCheck_alcotest.to_alcotest (qcheck_conservation impl) ]
    in
    let conc =
      if impl.Registry.family = Registry.Sequential then []
      else concurrent_cases impl
    in
    seq @ bounded @ qc @ batch_cases impl @ conc
