(* Unit tests for the reclamation substrates: free pool, hazard pointers,
   epochs. *)

module Fp = Nbq_reclaim.Free_pool
module Hp = Nbq_reclaim.Hazard_pointer
module Ebr = Nbq_reclaim.Epoch
module Seg = Nbq_segmented.Segmented
module Sq = Seg.Cas_core

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Free pool --- *)

let fp_empty () =
  let p : int Fp.t = Fp.create () in
  Alcotest.(check (option int)) "empty take" None (Fp.take p);
  Alcotest.(check int) "size" 0 (Fp.size p)

let fp_lifo () =
  let p = Fp.create () in
  Fp.put p 1;
  Fp.put p 2;
  Fp.put p 3;
  Alcotest.(check (option int)) "lifo 3" (Some 3) (Fp.take p);
  Alcotest.(check (option int)) "lifo 2" (Some 2) (Fp.take p);
  Alcotest.(check (option int)) "lifo 1" (Some 1) (Fp.take p);
  Alcotest.(check (option int)) "drained" None (Fp.take p)

let fp_identity_preserved () =
  (* The pool must return the very same block — that's what makes ABA real
     for its clients. *)
  let p = Fp.create () in
  let x = ref 42 in
  Fp.put p x;
  (match Fp.take p with
  | Some y -> Alcotest.(check bool) "same block" true (x == y)
  | None -> Alcotest.fail "lost node")

let fp_stats () =
  let p = Fp.create () in
  Fp.put p 1;
  Fp.put p 2;
  ignore (Fp.take p);
  Alcotest.(check int) "puts" 2 (Fp.stats_puts p);
  Alcotest.(check int) "takes" 1 (Fp.stats_takes p);
  Alcotest.(check int) "size" 1 (Fp.size p)

let fp_concurrent_conservation () =
  let p = Fp.create () in
  let per_domain = 10_000 and domains = 4 in
  let takes = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Fp.put p ((d * per_domain) + i);
              if i mod 2 = 0 then
                match Fp.take p with
                | Some _ -> ignore (Atomic.fetch_and_add takes 1)
                | None -> ()
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "puts - takes = size"
    ((domains * per_domain) - Atomic.get takes)
    (Fp.size p)

(* --- Hazard pointers --- *)

type hp_node = { id : int; mutable live : bool }

let hp_manager ?(sorted_scan = true) ?threshold freed =
  Hp.create ~sorted_scan
    ?threshold
    ~node_id:(fun n -> n.id)
    ~free:(fun n ->
      n.live <- false;
      freed := n :: !freed)
    ()

let hp_unprotected_is_freed () =
  let freed = ref [] in
  let mgr = hp_manager freed in
  let r = Hp.get_record mgr in
  let n = { id = 1; live = true } in
  Hp.retire mgr r n;
  Hp.scan mgr r;
  Alcotest.(check int) "freed" 1 (List.length !freed);
  Alcotest.(check bool) "marked dead" false n.live

let hp_protected_is_kept () =
  let freed = ref [] in
  let mgr = hp_manager freed in
  let r = Hp.get_record mgr in
  let n = { id = 1; live = true } in
  Hp.protect r 0 n;
  Hp.retire mgr r n;
  Hp.scan mgr r;
  Alcotest.(check int) "kept" 0 (List.length !freed);
  Hp.clear r 0;
  Hp.scan mgr r;
  Alcotest.(check int) "freed after clear" 1 (List.length !freed)

let hp_cross_thread_protection () =
  let freed = ref [] in
  let mgr = hp_manager freed in
  let n = { id = 7; live = true } in
  let protected_and_waiting = Atomic.make false in
  let release = Atomic.make false in
  let guard =
    Domain.spawn (fun () ->
        let r = Hp.get_record mgr in
        Hp.protect r 0 n;
        Atomic.set protected_and_waiting true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Hp.clear r 0)
  in
  while not (Atomic.get protected_and_waiting) do
    Domain.cpu_relax ()
  done;
  let r = Hp.get_record mgr in
  Hp.retire mgr r n;
  Hp.scan mgr r;
  Alcotest.(check int) "kept while foreign hazard set" 0 (List.length !freed);
  Atomic.set release true;
  Domain.join guard;
  Hp.scan mgr r;
  Alcotest.(check int) "freed after foreign clear" 1 (List.length !freed)

let hp_threshold_triggers_scan () =
  let freed = ref [] in
  let mgr = hp_manager ~threshold:(fun ~participants:_ -> 3) freed in
  let r = Hp.get_record mgr in
  Hp.retire mgr r { id = 1; live = true };
  Hp.retire mgr r { id = 2; live = true };
  Alcotest.(check int) "below threshold: nothing freed" 0 (List.length !freed);
  Hp.retire mgr r { id = 3; live = true };
  Alcotest.(check int) "threshold scan freed all" 3 (List.length !freed)

let hp_sorted_unsorted_agree () =
  List.iter
    (fun sorted_scan ->
      let freed = ref [] in
      let mgr = hp_manager ~sorted_scan freed in
      let r = Hp.get_record mgr in
      let keep = { id = 10; live = true } in
      let kill = List.init 20 (fun i -> { id = 20 + i; live = true }) in
      Hp.protect r 0 keep;
      Hp.retire mgr r keep;
      List.iter (Hp.retire mgr r) kill;
      Hp.scan mgr r;
      Alcotest.(check int)
        (Printf.sprintf "sorted=%b frees exactly the unprotected" sorted_scan)
        20 (List.length !freed);
      Alcotest.(check bool) "protected survives" true keep.live)
    [ true; false ]

let hp_clear_all () =
  let freed = ref [] in
  let mgr = hp_manager freed in
  let r = Hp.get_record mgr in
  let a = { id = 1; live = true } and b = { id = 2; live = true } in
  Hp.protect r 0 a;
  Hp.protect r 1 b;
  Hp.clear_all r;
  Hp.retire mgr r a;
  Hp.retire mgr r b;
  Hp.scan mgr r;
  Alcotest.(check int) "both freed" 2 (List.length !freed)

let hp_stats_and_participants () =
  let freed = ref [] in
  let mgr = hp_manager ~threshold:(fun ~participants:_ -> 1000) freed in
  let r = Hp.get_record mgr in
  Alcotest.(check int) "one participant" 1 (Hp.participants mgr);
  Hp.retire mgr r { id = 1; live = true };
  Alcotest.(check int) "retired" 1 (Hp.total_retired mgr);
  Alcotest.(check int) "pending" 1 (Hp.pending mgr);
  Hp.scan mgr r;
  Alcotest.(check int) "scans" 1 (Hp.total_scans mgr);
  Alcotest.(check int) "freed stat" 1 (Hp.total_freed mgr);
  Alcotest.(check int) "no more pending" 0 (Hp.pending mgr)

let hp_record_released_and_reused () =
  let freed = ref [] in
  let mgr = hp_manager freed in
  let n_before = Hp.participants mgr in
  let d1 =
    Domain.spawn (fun () ->
        ignore (Hp.get_record mgr);
        Hp.release_record mgr)
  in
  Domain.join d1;
  let d2 =
    Domain.spawn (fun () ->
        ignore (Hp.get_record mgr);
        Hp.release_record mgr)
  in
  Domain.join d2;
  (* The second domain must have recycled the first domain's record. *)
  Alcotest.(check int) "participants grew by one" (n_before + 1)
    (Hp.participants mgr)

let hp_configurable_slots () =
  let freed = ref [] in
  let mgr =
    Hp.create ~hazards_per_thread:4
      ~node_id:(fun (n : hp_node) -> n.id)
      ~free:(fun n -> freed := n :: !freed)
      ()
  in
  let r = Hp.get_record mgr in
  let nodes = List.init 4 (fun i -> { id = i; live = true }) in
  List.iteri (fun i n -> Hp.protect r i n) nodes;
  List.iter (Hp.retire mgr r) nodes;
  Hp.scan mgr r;
  Alcotest.(check int) "all four slots protect" 0 (List.length !freed);
  Hp.clear_all r;
  Hp.scan mgr r;
  Alcotest.(check int) "all freed after clear" 4 (List.length !freed)

let hp_double_protect_single_slot () =
  (* Re-protecting a slot replaces the previous protection. *)
  let freed = ref [] in
  let mgr = hp_manager freed in
  let r = Hp.get_record mgr in
  let a = { id = 1; live = true } and b = { id = 2; live = true } in
  Hp.protect r 0 a;
  Hp.protect r 0 b;
  (* a no longer protected *)
  Hp.retire mgr r a;
  Hp.retire mgr r b;
  Hp.scan mgr r;
  Alcotest.(check int) "only unprotected freed" 1 (List.length !freed);
  Alcotest.(check bool) "b survived" true b.live;
  Alcotest.(check bool) "a collected" false a.live

let qcheck_pool_lifo =
  QCheck.Test.make ~count:200 ~name:"pool pops in LIFO order"
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 1000))
    (fun xs ->
      let p = Fp.create () in
      List.iter (Fp.put p) xs;
      let popped = List.filter_map (fun _ -> Fp.take p) xs in
      popped = List.rev xs && Fp.take p = None)

(* --- Epochs --- *)

let ebr_manager freed =
  Ebr.create ~batch_size:1000
    ~free:(fun n ->
      n.live <- false;
      freed := n :: !freed)
    ()

let ebr_basic_grace_period () =
  let freed = ref [] in
  let mgr = ebr_manager freed in
  let r = Ebr.get_record mgr in
  Ebr.enter mgr r;
  let n = { id = 1; live = true } in
  Ebr.retire mgr r n;
  Ebr.exit r;
  (* Two collections to pass the two-epoch grace period. *)
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Alcotest.(check int) "freed after grace" 1 (List.length !freed);
  Alcotest.(check bool) "dead" false n.live

let ebr_pinned_blocks_advance () =
  let freed = ref [] in
  let mgr = ebr_manager freed in
  let pinned = Atomic.make false and release = Atomic.make false in
  let blocker =
    Domain.spawn (fun () ->
        let r = Ebr.get_record mgr in
        Ebr.enter mgr r;
        Atomic.set pinned true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Ebr.exit r)
  in
  while not (Atomic.get pinned) do
    Domain.cpu_relax ()
  done;
  let r = Ebr.get_record mgr in
  Ebr.enter mgr r;
  Ebr.retire mgr r { id = 1; live = true };
  Ebr.exit r;
  let e0 = Ebr.global_epoch mgr in
  (* The pinned blocker observed the then-current epoch; after at most one
     advance it blocks all further ones, so repeated collection can never
     complete the 2-epoch grace period. *)
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Alcotest.(check bool) "epoch advanced at most once" true
    (Ebr.global_epoch mgr <= e0 + 1);
  Alcotest.(check int) "nothing freed while pinned" 0 (List.length !freed);
  Atomic.set release true;
  Domain.join blocker;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Alcotest.(check int) "freed after unpin" 1 (List.length !freed)

let ebr_batch_triggers_collect () =
  let freed = ref [] in
  let mgr =
    Ebr.create ~batch_size:4
      ~free:(fun n ->
        n.live <- false;
        freed := n :: !freed)
      ()
  in
  let r = Ebr.get_record mgr in
  for i = 1 to 40 do
    Ebr.enter mgr r;
    Ebr.retire mgr r { id = i; live = true };
    Ebr.exit r
  done;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Ebr.try_collect mgr r;
  Alcotest.(check bool) "most retirements collected" true
    (List.length !freed >= 30);
  Alcotest.(check int) "accounting matches" (List.length !freed)
    (Ebr.total_freed mgr);
  Alcotest.(check int) "pending + freed = retired" 40
    (Ebr.pending mgr + Ebr.total_freed mgr)

let ebr_concurrent_churn () =
  let freed = ref [] in
  let lock = Mutex.create () in
  let mgr =
    Ebr.create ~batch_size:16
      ~free:(fun (n : hp_node) ->
        Mutex.lock lock;
        freed := n :: !freed;
        Mutex.unlock lock)
      ()
  in
  let per_domain = 5_000 and domains = 4 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let r = Ebr.get_record mgr in
            for i = 1 to per_domain do
              Ebr.enter mgr r;
              Ebr.retire mgr r { id = (d * per_domain) + i; live = true };
              Ebr.exit r
            done))
  in
  List.iter Domain.join workers;
  (* Drain what's left. *)
  let r = Ebr.get_record mgr in
  for _ = 1 to 5 do
    Ebr.try_collect mgr r
  done;
  let total = domains * per_domain in
  Alcotest.(check int) "free + pending = retired" total
    (List.length !freed + Ebr.pending mgr);
  (* No double frees: ids unique. *)
  let ids = List.map (fun n -> n.id) !freed in
  Alcotest.(check int) "no double frees" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* --- Segmented-queue hazard reclamation ---------------------------------

   The segmented queue's whole safety argument is that a retired segment
   is never recycled while a registered reader still holds it in a
   hazard slot.  These tests exercise that claim directly through the
   queue's test hooks: [pin_head] publishes the head segment through the
   same protect/validate handshake the operations use, and
   [seg_incarnation] moves only inside [free_seg] — so a pinned segment
   whose incarnation changes is a reclamation bug, not a flaky test. *)

let seg_pinned_head_survives_drain () =
  let q = Sq.create ~retire_threshold:1 ~capacity:2 () in
  let pinner = Sq.register q and worker = Sq.register q in
  for i = 1 to 10 do
    ignore (Sq.enqueue_with q worker i)
  done;
  let seg = Sq.pin_head q pinner in
  let id0 = Sq.seg_id seg and inc0 = Sq.seg_incarnation seg in
  Alcotest.(check bool) "pinned is protected" true (Sq.seg_protected q seg);
  for i = 1 to 10 do
    Alcotest.(check (option int))
      "fifo drain" (Some i)
      (Sq.dequeue_with q worker)
  done;
  Alcotest.(check (option int)) "empty" None (Sq.dequeue_with q worker);
  (* The drain moved head past [seg] and retired it; with
     [retire_threshold:1] every retire scanned, so everything except the
     pinned segment is already back in the pool. *)
  Alcotest.(check int) "incarnation stable while pinned" inc0
    (Sq.seg_incarnation seg);
  Alcotest.(check int) "identity stable while pinned" id0 (Sq.seg_id seg);
  Alcotest.(check bool) "still protected after drain" true
    (Sq.seg_protected q seg);
  let s = Sq.stats q in
  Alcotest.(check int) "only the pinned segment pending" 1
    s.Seg.retired_pending;
  Alcotest.(check int) "unpinned predecessors recycled" 3 s.Seg.segs_recycled;
  Sq.unpin pinner;
  Alcotest.(check bool) "unprotected after unpin" false
    (Sq.seg_protected q seg);
  (* Releasing the retirer's record flushes its parked list; with the pin
     gone the segment must now be freed. *)
  Sq.deregister q worker;
  Sq.deregister q pinner;
  let s = Sq.stats q in
  Alcotest.(check int) "nothing left pending" 0 s.Seg.retired_pending;
  Alcotest.(check int) "all four drained segments recycled" 4
    s.Seg.segs_recycled;
  Alcotest.(check bool) "recycle bumped the incarnation" true
    (Sq.seg_incarnation seg > inc0)

let seg_pool_reuse_no_alloc () =
  let q = Sq.create ~retire_threshold:1 ~capacity:2 () in
  let h = Sq.register q in
  for i = 1 to 4 do
    ignore (Sq.enqueue_with q h i)
  done;
  for i = 1 to 4 do
    Alcotest.(check (option int)) "drain" (Some i) (Sq.dequeue_with q h)
  done;
  let s = Sq.stats q in
  Alcotest.(check int) "two segments allocated" 2 s.Seg.segs_allocated;
  Alcotest.(check int) "drained predecessor recycled" 1 s.Seg.segs_recycled;
  Alcotest.(check int) "pooled" 1 s.Seg.pool_size;
  (* The next append must come from the pool, not a fresh block. *)
  ignore (Sq.enqueue_with q h 5);
  ignore (Sq.enqueue_with q h 6);
  let s = Sq.stats q in
  Alcotest.(check int) "reused, not reallocated" 2 s.Seg.segs_allocated;
  Alcotest.(check int) "pool emptied by reuse" 0 s.Seg.pool_size;
  Alcotest.(check (option int)) "fifo across reuse (5)" (Some 5)
    (Sq.dequeue_with q h);
  Alcotest.(check (option int)) "fifo across reuse (6)" (Some 6)
    (Sq.dequeue_with q h);
  Sq.deregister q h;
  let s = Sq.stats q in
  Alcotest.(check int) "steady-state needs two blocks total" 2
    s.Seg.segs_allocated;
  Alcotest.(check int) "both retirements recycled" 2 s.Seg.segs_recycled

let seg_concurrent_churn_hazards () =
  (* Four domains hammer a small-segment queue (>= 100k operations total)
     so the chain churns through retire/recycle constantly; every ~100th
     iteration a domain pins the head segment and checks that its
     incarnation never moves while the hazard is held. *)
  let q = Sq.create ~capacity:4 () in
  let domains = 4 and per_domain = 15_000 in
  let deqs = Atomic.make 0 in
  let pin_violation = Atomic.make false in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let h = Sq.register q in
            for i = 1 to per_domain do
              ignore (Sq.enqueue_with q h ((d * per_domain) + i));
              (if i mod 97 = 0 then begin
                 let seg = Sq.pin_head q h in
                 let inc = Sq.seg_incarnation seg in
                 if not (Sq.seg_protected q seg) then
                   Atomic.set pin_violation true;
                 for _ = 1 to 50 do
                   Domain.cpu_relax ()
                 done;
                 if Sq.seg_incarnation seg <> inc then
                   Atomic.set pin_violation true;
                 Sq.unpin h
               end);
              match Sq.dequeue_with q h with
              | Some _ -> Atomic.incr deqs
              | None -> ()
            done;
            Sq.deregister q h))
  in
  List.iter Domain.join workers;
  Alcotest.(check bool) "no pinned segment was recycled" false
    (Atomic.get pin_violation);
  let h = Sq.register q in
  let drained = ref 0 in
  let rec drain () =
    match Sq.dequeue_with q h with
    | Some _ ->
        incr drained;
        drain ()
    | None -> ()
  in
  drain ();
  Sq.deregister q h;
  Alcotest.(check int) "conservation" (domains * per_domain)
    (Atomic.get deqs + !drained);
  Alcotest.(check int) "drained empty" 0 (Sq.length q);
  (* A released record can still park retirees that were protected at its
     last scan; cycling through every record flushes them all. *)
  let flush = List.init (domains + 4) (fun _ -> Sq.register q) in
  List.iter (fun h -> Sq.deregister q h) flush;
  let s = Sq.stats q in
  Alcotest.(check int) "no retired segment left pending" 0
    s.Seg.retired_pending;
  Alcotest.(check bool) "churn exercised reclamation" true
    (s.Seg.segs_recycled > 0);
  Alcotest.(check int) "chain collapsed back to one segment" 1
    s.Seg.chain_length

let () =
  Alcotest.run "reclaim"
    [
      ( "free-pool",
        [
          quick "empty" fp_empty;
          quick "lifo order" fp_lifo;
          quick "block identity preserved" fp_identity_preserved;
          quick "stats" fp_stats;
          slow "concurrent conservation" fp_concurrent_conservation;
          QCheck_alcotest.to_alcotest qcheck_pool_lifo;
        ] );
      ( "hazard-pointers",
        [
          quick "unprotected freed" hp_unprotected_is_freed;
          quick "protected kept" hp_protected_is_kept;
          slow "cross-thread protection" hp_cross_thread_protection;
          quick "threshold scan" hp_threshold_triggers_scan;
          quick "sorted/unsorted agree" hp_sorted_unsorted_agree;
          quick "clear_all" hp_clear_all;
          quick "stats and participants" hp_stats_and_participants;
          slow "record release and reuse" hp_record_released_and_reused;
          quick "configurable slot count" hp_configurable_slots;
          quick "re-protecting a slot" hp_double_protect_single_slot;
        ] );
      ( "epochs",
        [
          quick "grace period" ebr_basic_grace_period;
          slow "pinned thread blocks reclamation" ebr_pinned_blocks_advance;
          quick "batch triggers collection" ebr_batch_triggers_collect;
          slow "concurrent churn" ebr_concurrent_churn;
        ] );
      ( "segmented-hazards",
        [
          quick "pinned head survives drain" seg_pinned_head_survives_drain;
          quick "pool reuse avoids allocation" seg_pool_reuse_no_alloc;
          slow "4-domain churn respects hazards" seg_concurrent_churn_hazards;
        ] );
    ]
