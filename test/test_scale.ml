(* Tests for the sharded multi-ring front-end (lib/scale): affinity and
   clamping, steal sweeps and their hooks, per-shard FIFO (the order
   guarantee sharding keeps), batch spill, the non-linearizable length
   snapshot, and every concurrent registry implementation behind the
   sharded wrapper at 1 and 4 shards. *)

module Sharded = Nbq_scale.Sharded
open Nbq_harness

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* A bounded reference ring per shard — sequential tests need exact,
   deterministic shard behaviour, not another concurrent queue. *)
let ref_shard capacity _i =
  let q = Queue.create () in
  Sharded.ops_of_singles
    ~enq:(fun x ->
      if Queue.length q < capacity then begin
        Queue.add x q;
        true
      end
      else false)
    ~deq:(fun () -> Queue.take_opt q)
    ~len:(fun () -> Queue.length q)

(* --- construction and affinity --- *)

let rejects_zero_shards () =
  match Sharded.create ~shards:0 (ref_shard 4) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let home_affinity_targets_home_shard () =
  let t = Sharded.create ~home:(fun () -> 2) ~shards:4 (ref_shard 4) in
  Alcotest.(check bool) "enqueue accepted" true (Sharded.try_enqueue t 7);
  Alcotest.(check int) "landed on the home shard" 1 (Sharded.shard_length t 2);
  Alcotest.(check int) "no steal" 0 (Sharded.steal_count t);
  Alcotest.(check (option (pair int int))) "dequeued from home"
    (Some (2, 7))
    (Sharded.try_dequeue_with_source t)

let home_result_is_clamped () =
  (* A wild affinity function must not index out of bounds. *)
  let t = Sharded.create ~home:(fun () -> -5) ~shards:4 (ref_shard 4) in
  Alcotest.(check bool) "enqueue accepted" true (Sharded.try_enqueue t 1);
  Alcotest.(check int) "item is somewhere" 1 (Sharded.length t);
  Alcotest.(check (option int)) "and comes back" (Some 1)
    (Sharded.try_dequeue t)

(* --- steal sweeps --- *)

let enqueue_steals_on_full_home () =
  let steals = ref 0 and windows = ref 0 in
  let t =
    Sharded.create
      ~note_steal:(fun () -> incr steals)
      ~steal_window:(fun () -> incr windows)
      ~home:(fun () -> 0)
      ~shards:4 (ref_shard 1)
  in
  Alcotest.(check bool) "home takes the first" true (Sharded.try_enqueue t 1);
  Alcotest.(check int) "no window yet" 0 !windows;
  Alcotest.(check bool) "second spills" true (Sharded.try_enqueue t 2);
  Alcotest.(check int) "window fired before the sweep" 1 !windows;
  Alcotest.(check int) "one steal" 1 (Sharded.steal_count t);
  Alcotest.(check int) "note_steal fired" 1 !steals;
  Alcotest.(check int) "spilled to the next shard" 1 (Sharded.shard_length t 1)

let enqueue_full_everywhere_reports_full () =
  let windows = ref 0 in
  let t =
    Sharded.create
      ~steal_window:(fun () -> incr windows)
      ~home:(fun () -> 0)
      ~shards:3 (ref_shard 1)
  in
  for i = 1 to 3 do
    Alcotest.(check bool) "fills" true (Sharded.try_enqueue t i)
  done;
  Alcotest.(check bool) "full sweep fails" false (Sharded.try_enqueue t 99);
  Alcotest.(check bool) "window fired on the failed sweep too" true
    (!windows >= 1);
  Alcotest.(check int) "nothing lost" 3 (Sharded.length t)

let dequeue_steals_from_foreign_shard () =
  (* Plant an item on a foreign shard via enqueue spill: 1..4 fill home
     shard 0, item 5 spills to shard 1; draining four leaves only the
     spilled item, which the next dequeue must steal. *)
  let t = Sharded.create ~home:(fun () -> 0) ~shards:4 (ref_shard 4) in
  for i = 1 to 5 do
    ignore (Sharded.try_enqueue t i)
  done;
  (* shard0 holds 1..4, shard1 holds 5. *)
  for _ = 1 to 4 do
    ignore (Sharded.try_dequeue t)
  done;
  Alcotest.(check int) "only the spilled item remains" 1 (Sharded.length t);
  (match Sharded.try_dequeue_with_source t with
  | Some (s, v) ->
      Alcotest.(check int) "served by a foreign shard" 1 s;
      Alcotest.(check int) "the spilled value" 5 v
  | None -> Alcotest.fail "false empty with an item planted");
  Alcotest.(check bool) "dequeue steal counted" true
    (Sharded.steal_count t >= 1)

(* --- per-shard FIFO (sequential) --- *)

let per_shard_fifo_sequential () =
  (* Round-robin affinity scatters 0..11 across 3 shards; within every
     shard the dequeued subsequence must be increasing. *)
  let c = ref (-1) in
  let t =
    Sharded.create
      ~home:(fun () ->
        incr c;
        !c)
      ~shards:3 (ref_shard 16)
  in
  for i = 0 to 11 do
    Alcotest.(check bool) "enq" true (Sharded.try_enqueue t i)
  done;
  let last = Array.make 3 (-1) in
  let rec drain n =
    match Sharded.try_dequeue_with_source t with
    | Some (s, v) ->
        Alcotest.(check bool)
          (Printf.sprintf "shard %d FIFO (%d after %d)" s v last.(s))
          true (v > last.(s));
        last.(s) <- v;
        drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "all items back" 12 (drain 0)

(* --- batches --- *)

let batch_spill_lands_contiguous_runs () =
  let t = Sharded.create ~home:(fun () -> 0) ~shards:4 (ref_shard 2) in
  let accepted = Sharded.try_enqueue_batch t (Array.init 8 Fun.id) in
  Alcotest.(check int) "whole batch accepted across shards" 8 accepted;
  for s = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d took its pair" s)
      2
      (Sharded.shard_length t s)
  done;
  (* The prefix order is preserved within every shard. *)
  let last = Array.make 4 (-1) in
  let rec drain () =
    match Sharded.try_dequeue_with_source t with
    | Some (s, v) ->
        Alcotest.(check bool) "per-shard batch order" true (v > last.(s));
        last.(s) <- v;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained" 0 (Sharded.length t)

let batch_enqueue_partial_when_all_full () =
  let t = Sharded.create ~home:(fun () -> 0) ~shards:2 (ref_shard 2) in
  Alcotest.(check int) "only the aggregate capacity fits" 4
    (Sharded.try_enqueue_batch t (Array.init 10 Fun.id));
  Alcotest.(check int) "nothing more" 0
    (Sharded.try_enqueue_batch t [| 99 |])

let batch_dequeue_sweeps_shards () =
  let t = Sharded.create ~home:(fun () -> 0) ~shards:3 (ref_shard 2) in
  ignore (Sharded.try_enqueue_batch t (Array.init 6 Fun.id));
  let got = Sharded.try_dequeue_batch t 10 in
  Alcotest.(check int) "everything in one batch demand" 6 (List.length got);
  Alcotest.(check (list int)) "each item exactly once"
    (List.init 6 Fun.id)
    (List.sort compare got);
  Alcotest.(check (list int)) "empty facade yields nothing" []
    (Sharded.try_dequeue_batch t 4);
  Alcotest.(check int) "k <= 0 is a no-op" 0
    (List.length (Sharded.try_dequeue_batch t 0))

(* --- length: a non-linearizable sum-of-shards snapshot --- *)

let length_exact_when_quiescent () =
  let t = Sharded.create ~home:(fun () -> 0) ~shards:4 (ref_shard 2) in
  Alcotest.(check int) "empty" 0 (Sharded.length t);
  ignore (Sharded.try_enqueue_batch t (Array.init 7 Fun.id));
  Alcotest.(check int) "counts across shards" 7 (Sharded.length t);
  ignore (Sharded.try_dequeue t);
  Alcotest.(check int) "tracks removals" 6 (Sharded.length t)

let length_bounded_under_concurrency () =
  (* Each worker keeps at most one item in flight, so at any instant the
     true length is at most [workers]; each shard's read is its own
     instantaneous count, so the summed snapshot can never exceed
     [workers * shards] nor go negative — the documented in-flight
     bound.  Exactness returns at quiescence. *)
  let shards = 4 and workers = 2 in
  let impl = Registry.find "evequoz-cas" in
  let t =
    Sharded.create ~shards (fun _ ->
        let q = impl.Registry.create ~capacity:8 in
        Sharded.ops_of_singles
          ~enq:(fun v -> q.Registry.enqueue { Registry.tag = v })
          ~deq:(fun () ->
            Option.map (fun p -> p.Registry.tag) (q.Registry.dequeue ()))
          ~len:(fun () -> q.Registry.length ()))
  in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let doms =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 5_000 do
              let v = (w * 1_000_000) + i in
              while not (Sharded.try_enqueue t v) do
                Domain.cpu_relax ()
              done;
              let rec drain () =
                match Sharded.try_dequeue t with
                | Some _ -> ()
                | None ->
                    Domain.cpu_relax ();
                    drain ()
              in
              drain ()
            done))
  in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let l = Sharded.length t in
          if l < 0 || l > workers * shards then
            ignore (Atomic.fetch_and_add bad 1);
          Domain.cpu_relax ()
        done)
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  Domain.join sampler;
  Alcotest.(check int) "snapshot stayed within the in-flight bound" 0
    (Atomic.get bad);
  Alcotest.(check int) "exact at quiescence" 0 (Sharded.length t)

(* --- per-shard FIFO under concurrency --- *)

let per_shard_fifo_concurrent () =
  (* Two producer domains with default (domain) affinity, one consumer
     (this domain) sweeping with source reporting: within every
     (shard, producer) pair the tags must be monotone — the exact order
     guarantee sharding keeps when spills scatter a producer's stream
     across rings (per-shard capacity 8 forces spills). *)
  let impl = Registry.find "evequoz-cas" in
  let t =
    Sharded.create ~shards:4 (fun _ ->
        let q = impl.Registry.create ~capacity:8 in
        Sharded.ops_of_singles
          ~enq:(fun v -> q.Registry.enqueue { Registry.tag = v })
          ~deq:(fun () ->
            Option.map (fun p -> p.Registry.tag) (q.Registry.dequeue ()))
          ~len:(fun () -> q.Registry.length ()))
  in
  let producers = 2 and per = 3_000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              while not (Sharded.try_enqueue t ((p lsl 20) lor i)) do
                Domain.cpu_relax ()
              done
            done))
  in
  let last : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let got = ref 0 and violations = ref 0 in
  while !got < producers * per do
    match Sharded.try_dequeue_with_source t with
    | Some (shard, v) ->
        incr got;
        let p = v lsr 20 and i = v land 0xFFFFF in
        (match Hashtbl.find_opt last (shard, p) with
        | Some prev when i <= prev -> incr violations
        | _ -> ());
        Hashtbl.replace last (shard, p) i
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  Alcotest.(check int) "per-(shard, producer) order held" 0 !violations;
  Alcotest.(check int) "drained" 0 (Sharded.length t)

(* --- functor veneer --- *)

module Shard4 = Sharded.Evequoz_cas (struct
  let shards = 4
end)

let functor_veneer_roundtrip () =
  Alcotest.(check string) "name" "evequoz-cas-shard4" Shard4.name;
  Alcotest.(check bool) "bounded" true Shard4.bounded;
  let q = Shard4.create ~capacity:16 in
  Alcotest.(check int) "shard count visible through the veneer" 4
    (Sharded.shard_count q);
  for i = 1 to 10 do
    Alcotest.(check bool) "enq" true (Shard4.try_enqueue q i)
  done;
  Alcotest.(check int) "length" 10 (Shard4.length q);
  let rec drain acc =
    match Shard4.try_dequeue q with Some v -> drain (v :: acc) | None -> acc
  in
  Alcotest.(check (list int)) "every item exactly once"
    (List.init 10 (fun i -> i + 1))
    (List.sort compare (drain []));
  Alcotest.(check bool) "steal counter readable" true
    (Sharded.steal_count q >= 0)

let probed_registry_row_counts_steals () =
  (* The registered shard4 row wires its probe into the sharding layer:
     spilling past a full home shard must surface as Shard_steal events
     in the hub. *)
  let impl = Registry.find "evequoz-cas-shard4" in
  let metrics = Nbq_obs.Metrics.create () in
  let q = impl.Registry.create_probed ~metrics ~capacity:8 in
  for i = 1 to 8 do
    Alcotest.(check bool) "aggregate capacity holds all" true
      (q.Registry.enqueue { Registry.tag = i })
  done;
  let s = Nbq_obs.Metrics.snapshot metrics in
  Alcotest.(check bool) "Shard_steal events recorded" true
    (Nbq_obs.Metrics.get s Nbq_obs.Event.Shard_steal > 0)

(* --- every concurrent implementation behind the wrapper --- *)

let wrapped_suite (impl : Registry.impl) shards =
  let w = Registry.sharded ~shards impl in
  ( w.Registry.name,
    [
      quick "relaxed drain (multiset)" (Battery.test_relaxed_drain w);
      quick "batch roundtrip" (Battery.test_batch_roundtrip w);
      QCheck_alcotest.to_alcotest (Battery.qcheck_conservation w);
      slow "length bounds under churn" (Battery.test_length_under_churn w);
    ] )

let wrapped_suites =
  Registry.concurrent
  |> List.filter (fun (i : Registry.impl) -> not i.Registry.relaxed_fifo)
  |> List.concat_map (fun impl ->
         [ wrapped_suite impl 1; wrapped_suite impl 4 ])

let () =
  Alcotest.run "scale"
    (( "sharded",
       [
         quick "rejects zero shards" rejects_zero_shards;
         quick "home affinity" home_affinity_targets_home_shard;
         quick "home clamped" home_result_is_clamped;
         quick "enqueue steals on full home" enqueue_steals_on_full_home;
         quick "full everywhere reports full"
           enqueue_full_everywhere_reports_full;
         quick "dequeue steals from foreign shard"
           dequeue_steals_from_foreign_shard;
         quick "per-shard FIFO (sequential)" per_shard_fifo_sequential;
         quick "batch spill contiguous runs" batch_spill_lands_contiguous_runs;
         quick "batch partial accept at aggregate capacity"
           batch_enqueue_partial_when_all_full;
         quick "batch dequeue sweeps" batch_dequeue_sweeps_shards;
         quick "length exact when quiescent" length_exact_when_quiescent;
         quick "functor veneer roundtrip" functor_veneer_roundtrip;
         quick "probed row counts steals" probed_registry_row_counts_steals;
         slow "length bounded under concurrency"
           length_bounded_under_concurrency;
         slow "per-shard FIFO (concurrent)" per_shard_fifo_concurrent;
       ] )
    :: wrapped_suites)
