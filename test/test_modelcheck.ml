(* Model-checking tests: exhaustively explore all (preemption-bounded)
   interleavings of small scenarios against both of the paper's
   algorithms, validating every completed execution's history with the
   exact linearizability checker.  Also: sanity-check the explorer itself
   by letting it FIND a planted lost-update bug and the Fig.1-style
   corruption of a naive ring. *)

module Sim = Nbq_modelcheck.Sim
module H = Nbq_lincheck.History
module C = Nbq_lincheck.Checker

module SimCell = Nbq_primitives.Llsc.Make (Sim.Atomic)
module SimQ1 = Nbq_core.Evequoz_llsc.Make (SimCell)
module SimQ2 = Nbq_core.Evequoz_cas.Make (Sim.Atomic)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Explorer sanity --- *)

let explorer_finds_lost_update () =
  (* Two threads do a non-atomic increment (read, then write).  The
     explorer must find the interleaving where one update is lost. *)
  let scenario () =
    let c = Sim.Atomic.make 0 in
    let incr () =
      let v = Sim.Atomic.get c in
      Sim.Atomic.set c (v + 1)
    in
    let check () =
      let v = Sim.run_sequential (fun () -> Sim.Atomic.get c) in
      if v <> 2 then failwith (Printf.sprintf "lost update: %d" v)
    in
    ([| incr; incr |], check)
  in
  match Sim.explore scenario with
  | _ -> Alcotest.fail "explorer missed the lost update"
  | exception Sim.Violation { schedule; message } ->
      Alcotest.(check bool) "message mentions lost update" true
        (String.length message > 0);
      (* The violating schedule must reproduce deterministically. *)
      (match Sim.run_schedule scenario schedule with
      | `Completed -> Alcotest.fail "replay did not reproduce"
      | exception Failure _ -> ()
      | `Diverged -> Alcotest.fail "replay diverged")

let explorer_cas_increment_exact () =
  (* CAS retry loops make the increment atomic: no interleaving loses an
     update, and with a preemption bound nothing diverges. *)
  let scenario () =
    let c = Sim.Atomic.make 0 in
    let incr () =
      let rec go () =
        let v = Sim.Atomic.get c in
        if not (Sim.Atomic.compare_and_set c v (v + 1)) then go ()
      in
      go ()
    in
    let check () =
      let v = Sim.run_sequential (fun () -> Sim.Atomic.get c) in
      if v <> 3 then failwith (Printf.sprintf "bad count: %d" v)
    in
    ([| incr; incr; incr |], check)
  in
  let stats = Sim.explore scenario in
  Alcotest.(check bool) "exhaustive" true stats.Sim.exhaustive;
  Alcotest.(check int) "no divergence under preemption bound" 0
    stats.Sim.diverged;
  Alcotest.(check bool) "explored many schedules" true (stats.Sim.schedules > 10)

let explorer_llsc_counter_exact () =
  let scenario () =
    let c = SimCell.make 0 in
    let incr () =
      let rec go () =
        let l = SimCell.ll c in
        if not (SimCell.sc c l (SimCell.value l + 1)) then go ()
      in
      go ();
      go ()
    in
    let check () =
      let v = Sim.run_sequential (fun () -> SimCell.get c) in
      if v <> 4 then failwith (Printf.sprintf "bad count: %d" v)
    in
    ([| incr; incr |], check)
  in
  let stats = Sim.explore scenario in
  Alcotest.(check bool) "exhaustive" true stats.Sim.exhaustive

let explorer_finds_naive_ring_bug () =
  (* The naive ring (plain store into the tail slot, as in the Fig. 1
     discussion) loses an item under concurrent enqueues; the explorer
     must find it. *)
  let scenario () =
    let module A = Sim.Atomic in
    let slots = Array.init 4 (fun _ -> A.make 0) in
    let tail = A.make 0 in
    let enq v () =
      let t = A.get tail in
      A.set slots.(t land 3) v;
      ignore (A.compare_and_set tail t (t + 1))
    in
    let check () =
      Sim.run_sequential (fun () ->
          let found = ref 0 in
          Array.iter (fun s -> if A.get s <> 0 then incr found) slots;
          if !found <> 2 then failwith "naive ring lost an item")
    in
    ([| enq 1; enq 2 |], check)
  in
  match Sim.explore scenario with
  | _ -> Alcotest.fail "explorer missed the naive-ring bug"
  | exception Sim.Violation _ -> ()

let explorer_mcas_transfer_atomic () =
  (* Two concurrent 2-word MCAS transfers between the same cells: over all
     interleavings the sum is conserved and both transfers apply. *)
  let module M = Nbq_primitives.Mcas.Make (Sim.Atomic) in
  let scenario () =
    let a = M.make 100 and b = M.make 0 in
    let transfer amount () =
      let rec attempt () =
        let sa = M.read a and sb = M.read b in
        if
          not
            (M.mcas
               [
                 (a, sa, M.value sa - amount); (b, sb, M.value sb + amount);
               ])
        then attempt ()
      in
      attempt ()
    in
    let check () =
      Sim.run_sequential (fun () ->
          let va = M.value (M.read a) and vb = M.value (M.read b) in
          if va + vb <> 100 then
            failwith (Printf.sprintf "sum broken: %d + %d" va vb);
          if va <> 70 then
            failwith (Printf.sprintf "transfers lost: a = %d" va))
    in
    ([| transfer 10; transfer 20 |], check)
  in
  let stats = Sim.explore ~preemption_bound:(Some 3) scenario in
  Alcotest.(check bool) "exhaustive" true stats.Sim.exhaustive;
  Alcotest.(check int) "no divergence" 0 stats.Sim.diverged

let explorer_sequential_bound_zero () =
  (* preemption bound 0: only thread-at-a-time schedules; for two threads
     of straight-line atomic code that is exactly 2 schedules. *)
  let scenario () =
    let c = Sim.Atomic.make 0 in
    let bump () = ignore (Sim.Atomic.fetch_and_add c 1) in
    ([| bump; bump |], fun () -> ())
  in
  let stats = Sim.explore ~preemption_bound:(Some 0) scenario in
  Alcotest.(check bool) "exhaustive" true stats.Sim.exhaustive;
  Alcotest.(check int) "exactly 2 schedules" 2 stats.Sim.schedules

(* --- Linearizability of the paper's algorithms, exhaustively --- *)

(* Scenario builders live in Nbq_modelcheck.Scenarios (shared with
   bin/modelcheck_run.exe); this suite drives them plus a couple of
   exploration-mode variations. *)

module Scenarios = Nbq_modelcheck.Scenarios

let q1_scenario ~capacity ~prefill threads =
  Scenarios.build ~algorithm:"evequoz-llsc" ~capacity ~prefill threads

let q2_scenario ~capacity ~prefill threads =
  Scenarios.build ~algorithm:"evequoz-cas" ~capacity ~prefill threads

(* --- The scenario matrix --- *)

let check_exhaustive name scenario =
  match Sim.explore ~max_schedules:2_000_000 scenario with
  | stats ->
      Alcotest.(check bool) (name ^ ": explored the whole tree") true
        stats.Sim.exhaustive;
      Alcotest.(check int) (name ^ ": no divergence under bound") 0
        stats.Sim.diverged;
      Alcotest.(check bool) (name ^ ": nontrivial tree") true
        (stats.Sim.schedules > 1)
  | exception Sim.Violation { schedule; message } ->
      Alcotest.fail
        (Printf.sprintf "%s: schedule [%s] violates linearizability: %s" name
           (String.concat ";" (List.map string_of_int schedule))
           message)

let q1_enq_enq () =
  check_exhaustive "q1 enq|enq"
    (q1_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1 ]; [ Enq 2 ] ])

let q1_enq_deq_empty () =
  check_exhaustive "q1 enq|deq on empty"
    (q1_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q1_enq_deq_nonempty () =
  check_exhaustive "q1 enq|deq on 1 item"
    (q1_scenario ~capacity:2 ~prefill:[ 100 ] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q1_deq_deq () =
  check_exhaustive "q1 deq|deq on 2 items"
    (q1_scenario ~capacity:4 ~prefill:[ 100; 200 ] Scenarios.[ [ Deq ]; [ Deq ] ])

let q1_full_boundary () =
  check_exhaustive "q1 enq|deq at full"
    (q1_scenario ~capacity:2 ~prefill:[ 100; 200 ] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q1_two_ops_each () =
  check_exhaustive "q1 (enq;deq)|(enq;deq)"
    (q1_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1; Deq ]; [ Enq 2; Deq ] ])

let q1_three_threads () =
  check_exhaustive "q1 enq|enq|deq"
    (q1_scenario ~capacity:4 ~prefill:[] Scenarios.[ [ Enq 1 ]; [ Enq 2 ]; [ Deq ] ])

let q2_enq_enq () =
  check_exhaustive "q2 enq|enq"
    (q2_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1 ]; [ Enq 2 ] ])

let q2_enq_deq_empty () =
  check_exhaustive "q2 enq|deq on empty"
    (q2_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q2_enq_deq_nonempty () =
  check_exhaustive "q2 enq|deq on 1 item"
    (q2_scenario ~capacity:2 ~prefill:[ 100 ] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q2_deq_deq () =
  check_exhaustive "q2 deq|deq on 2 items"
    (q2_scenario ~capacity:4 ~prefill:[ 100; 200 ] Scenarios.[ [ Deq ]; [ Deq ] ])

let q2_full_boundary () =
  check_exhaustive "q2 enq|deq at full"
    (q2_scenario ~capacity:2 ~prefill:[ 100; 200 ] Scenarios.[ [ Enq 1 ]; [ Deq ] ])

let q2_two_ops_each () =
  check_exhaustive "q2 (enq;deq)|(enq;deq)"
    (q2_scenario ~capacity:2 ~prefill:[] Scenarios.[ [ Enq 1; Deq ]; [ Enq 2; Deq ] ])

(* The same standard matrix for each additional simulatable baseline. *)
let baseline_matrix algorithm () =
  List.iter
    (fun (name, capacity, prefill, threads) ->
      check_exhaustive
        (algorithm ^ " " ^ name)
        (Scenarios.build ~algorithm ~capacity ~prefill threads))
    Scenarios.standard_matrix

let shann_matrix = baseline_matrix "shann"
let tz_matrix = baseline_matrix "tsigas-zhang"
let ms_matrix = baseline_matrix "ms-gc"
let lms_matrix = baseline_matrix "lms-optimistic"

(* MCAS-heavy operations explode the bound-4 tree; bound 3 keeps the
   exploration exhaustive while still covering all 3-preemption races. *)
let valois_matrix () =
  List.iter
    (fun (name, capacity, prefill, threads) ->
      let scenario =
        Scenarios.build ~algorithm:"valois-dcas" ~capacity ~prefill threads
      in
      match
        Sim.explore ~preemption_bound:(Some 3) ~max_schedules:2_000_000
          scenario
      with
      | stats ->
          Alcotest.(check bool)
            ("valois " ^ name ^ ": explored the whole tree")
            true stats.Sim.exhaustive;
          Alcotest.(check int)
            ("valois " ^ name ^ ": no divergence")
            0 stats.Sim.diverged
      | exception Sim.Violation { schedule; message } ->
          Alcotest.fail
            (Printf.sprintf "valois %s: schedule [%s]: %s" name
               (String.concat ";" (List.map string_of_int schedule))
               message))
    Scenarios.standard_matrix

(* Herlihy–Wing's dequeue *waits* for a ticketed-but-unstored enqueue (the
   original is a total queue), so schedules that park the enqueuer diverge
   even under a preemption bound.  Those spin tails are choice-free, so a
   small step cap prices them in; we verify every terminating schedule and
   that divergent branches exist only where the blocking is expected. *)
let hw_matrix () =
  List.iter
    (fun (name, capacity, prefill, threads) ->
      let scenario =
        Scenarios.build ~algorithm:"herlihy-wing" ~capacity ~prefill threads
      in
      match
        Sim.explore ~preemption_bound:(Some 3) ~max_steps:200
          ~max_schedules:2_000_000 scenario
      with
      | stats ->
          Alcotest.(check bool)
            ("herlihy-wing " ^ name ^ ": explored the whole tree")
            true stats.Sim.exhaustive;
          Alcotest.(check bool)
            ("herlihy-wing " ^ name ^ ": nontrivial")
            true
            (stats.Sim.completed > 1)
      | exception Sim.Violation { schedule; message } ->
          Alcotest.fail
            (Printf.sprintf "herlihy-wing %s: schedule [%s]: %s" name
               (String.concat ";" (List.map string_of_int schedule))
               message))
    Scenarios.standard_matrix

let q2_three_threads () =
  check_exhaustive "q2 enq|enq|deq"
    (q2_scenario ~capacity:4 ~prefill:[]
       Scenarios.[ [ Enq 1 ]; [ Enq 2 ]; [ Deq ] ])

let shann_three_threads () =
  check_exhaustive "shann enq|enq|deq"
    (Scenarios.build ~algorithm:"shann" ~capacity:4 ~prefill:[]
       Scenarios.[ [ Enq 1 ]; [ Enq 2 ]; [ Deq ] ])

(* Peek (extension feature) raced against mutators. *)
let q1_peek_vs_deq () =
  check_exhaustive "q1 peek|deq"
    (q1_scenario ~capacity:4 ~prefill:[ 100; 200 ]
       Scenarios.[ [ Peek ]; [ Deq ] ])

let q1_peek_vs_enq_empty () =
  check_exhaustive "q1 peek|enq on empty"
    (q1_scenario ~capacity:4 ~prefill:[] Scenarios.[ [ Peek ]; [ Enq 1 ] ])

let q2_peek_vs_deq () =
  check_exhaustive "q2 peek|deq"
    (q2_scenario ~capacity:4 ~prefill:[ 100; 200 ]
       Scenarios.[ [ Peek ]; [ Deq ] ])

let q2_peek_vs_enq_empty () =
  check_exhaustive "q2 peek|enq on empty"
    (q2_scenario ~capacity:4 ~prefill:[] Scenarios.[ [ Peek ]; [ Enq 1 ] ])

let q2_livelock_branches_exist () =
  (* Without the preemption bound, the reservation-stealing ping-pong of
     the CAS simulation produces genuinely unbounded schedules — the
     obstruction-freedom caveat discussed in DESIGN.md.  Verify the
     explorer observes (and safely prunes) such branches, and that no
     terminating schedule is ever wrong. *)
  let scenario = q2_scenario ~capacity:2 ~prefill:[] [ [ Enq 1 ]; [ Enq 2 ] ] in
  match
    Sim.explore ~preemption_bound:None ~max_steps:300 ~max_schedules:20_000
      scenario
  with
  | stats ->
      Alcotest.(check bool) "found divergent (livelock) branches" true
        (stats.Sim.diverged > 0)
  | exception Sim.Violation { message; _ } -> Alcotest.fail message

(* --- DPOR + temporal properties --- *)

module Dpor = Nbq_modelcheck.Dpor
module Props = Nbq_modelcheck.Props
module Repro = Nbq_modelcheck.Repro

let find_spec algorithm scenario =
  match Scenarios.find ~algorithm ~scenario with
  | Some s -> s
  | None -> Alcotest.failf "spec %s/%s missing from the catalog" algorithm scenario

(* A seeded liveness bug must be convicted, its NBQ-FAULT-REPRO line must
   survive a print/parse roundtrip, and the schedule must reproduce the
   verdict through both replay surfaces. *)
let seeded_bug_convicted algorithm scenario () =
  let spec = find_spec algorithm scenario in
  match Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance with
  | _ -> Alcotest.failf "%s/%s: seeded bug not convicted" algorithm scenario
  | exception Sim.Violation { schedule; message } ->
      Alcotest.(check bool) "classified as liveness" true
        (Props.is_liveness_message message);
      (* repro-line roundtrip *)
      let repro =
        Repro.of_violation ~algorithm:spec.algorithm ~scenario:spec.scenario
          ~message schedule
      in
      let line = Repro.to_line repro in
      (match Repro.parse ("prefix noise " ^ line) with
      | Some r ->
          Alcotest.(check string) "algorithm" algorithm r.Repro.algorithm;
          Alcotest.(check string) "scenario" scenario r.Repro.scenario;
          Alcotest.(check (list int)) "schedule" schedule r.Repro.schedule;
          Alcotest.(check bool) "kind" true (r.Repro.kind = `Liveness)
      | None -> Alcotest.fail "repro line did not parse back");
      (* Dpor.replay re-derives the violation *)
      (match
         Dpor.replay ~progress:spec.progress spec.build_instance schedule
       with
      | { Dpor.violation = Some _; status = `Diverged (Props.Stuck _) } -> ()
      | { Dpor.violation = Some _; _ } ->
          Alcotest.fail "replay violated but not as Stuck"
      | { Dpor.violation = None; _ } ->
          Alcotest.fail "replay did not reproduce the violation");
      (* ... and the legacy surface agrees the schedule diverges. *)
      (match
         Sim.run_schedule ~max_steps:(List.length schedule)
           (Scenarios.scenario_of_spec spec)
           schedule
       with
      | `Diverged -> ()
      | `Completed -> Alcotest.fail "run_schedule completed unexpectedly")

let dpor_convicts_toy_blocking =
  seeded_bug_convicted "toy-blocking" "spin-on-dead-flag"

let dpor_convicts_lost_wakeup = seeded_bug_convicted "sim-wait" "lost-wakeup"

let dpor_park_wake_no_lost_wakeup () =
  (* The production eventcount (Blocking_ec over Eventcount_core) under
     simulation: every schedule either completes or resolves under the
     fair continuation, and no schedule strands the parked consumer. *)
  let spec = find_spec "sim-wait" "park-wake" in
  match Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance with
  | stats ->
      Alcotest.(check bool) "exhaustive" true stats.Dpor.exhaustive;
      Alcotest.(check int) "no stuck branch" 0 stats.Dpor.stuck;
      Alcotest.(check bool) "nontrivial tree" true (stats.Dpor.schedules > 50)
  | exception Sim.Violation { message; _ } -> Alcotest.fail message

let dpor_catches_planted_safety_bug () =
  (* The naive Fig.1-style ring again, this time through the DPOR engine:
     reduction must not prune the item-losing interleaving away. *)
  let build () =
    let module A = Sim.Atomic in
    let slots = Array.init 4 (fun _ -> A.make 0) in
    let tail = A.make 0 in
    let enq v () =
      let t = A.get tail in
      A.set slots.(t land 3) v;
      ignore (A.compare_and_set tail t (t + 1));
      Sim.op_completed ()
    in
    let check () =
      Sim.run_sequential (fun () ->
          let found = ref 0 in
          Array.iter (fun s -> if A.get s <> 0 then incr found) slots;
          if !found <> 2 then failwith "naive ring lost an item")
    in
    { Dpor.tasks = [| enq 1; enq 2 |]; check; invariant = None }
  in
  match Dpor.explore ~progress:Props.Lock_free build with
  | _ -> Alcotest.fail "DPOR missed the naive-ring bug"
  | exception Sim.Violation { schedule; message } -> (
      Alcotest.(check bool) "safety, not liveness" false
        (Props.is_liveness_message message);
      match Dpor.replay ~progress:Props.Lock_free build schedule with
      | { Dpor.violation = Some _; _ } -> ()
      | { Dpor.violation = None; _ } ->
          Alcotest.fail "replay did not reproduce")

let dpor_reduction_factor () =
  (* The acceptance bar: on the standard matrix, DPOR needs >= 5x fewer
     schedules than unreduced DFS (preemption_bound None) over the same
     tree.  The DFS budget is capped at 5x the DPOR count + 1, so hitting
     the cap proves the ratio. *)
  let spec = find_spec "evequoz-llsc" "enq-enq" in
  let dpor_stats =
    Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance
  in
  Alcotest.(check bool) "DPOR exhaustive" true dpor_stats.Dpor.exhaustive;
  let budget = (5 * dpor_stats.Dpor.schedules) + 1 in
  let dfs_stats =
    Dpor.explore ~dpor:false ~max_steps:60 ~max_schedules:budget
      ~progress:spec.progress spec.build_instance
  in
  Alcotest.(check bool) "DFS needs >= 5x the schedules" true
    ((not dfs_stats.Dpor.exhaustive)
    || dfs_stats.Dpor.schedules >= 5 * dpor_stats.Dpor.schedules)

let dpor_livelock_witness_classified () =
  (* Two writers ping-ponging forever without completing an operation:
     the fair probe cannot resolve them, the divergence carries writers,
     and a lock-free claim is violated — the Livelock_witness path. *)
  let build () =
    let c = Sim.Atomic.make 0 in
    let spin i () =
      while true do
        Sim.Atomic.set c i
      done
    in
    { Dpor.tasks = [| spin 1; spin 2 |]; check = (fun () -> ()); invariant = None }
  in
  (match Dpor.explore ~max_schedules:50 ~progress:Props.Lock_free build with
  | _ -> Alcotest.fail "livelock witness not convicted under lock-freedom"
  | exception Sim.Violation { message; _ } ->
      Alcotest.(check bool) "liveness message" true
        (Props.is_liveness_message message));
  (* The same witness is tolerated under an obstruction-freedom claim. *)
  match Dpor.explore ~max_schedules:50 ~progress:Props.Obstruction_free build with
  | stats ->
      Alcotest.(check bool) "witnesses observed" true (stats.Dpor.livelock > 0)
  | exception Sim.Violation { message; _ } -> Alcotest.fail message

let dpor_llsc_matrix_quick () =
  (* The full standard matrix for Algorithm 1 through DPOR with the
     strengthened checks (conservation by drain, index invariant) — small
     enough to stay in the quick tier. *)
  List.iter
    (fun (s : Scenarios.spec) ->
      if s.algorithm = "evequoz-llsc" then
        match
          Dpor.explore ~max_steps:60 ~progress:s.progress s.build_instance
        with
        | stats ->
            Alcotest.(check bool)
              (s.scenario ^ ": exhaustive") true stats.Dpor.exhaustive
        | exception Sim.Violation { schedule; message } ->
            Alcotest.failf "%s: schedule [%s]: %s" s.scenario
              (String.concat ";" (List.map string_of_int schedule))
              message)
    (Scenarios.specs ())

let dpor_bw_matrix_quick () =
  (* The Blelloch–Wei backend: the whole standard matrix (plus its batch
     specs) through DPOR with the strengthened checks — conservation by
     drain, handle-recycling bound, announcement hygiene.  The trees are
     small (the constant-time protocol has no tag handshake), so this
     exhaustive pass fits the quick tier. *)
  List.iter
    (fun (s : Scenarios.spec) ->
      if s.algorithm = "evequoz-bw" then
        match
          Dpor.explore ~max_steps:60 ~progress:s.progress s.build_instance
        with
        | stats ->
            Alcotest.(check bool)
              (s.scenario ^ ": exhaustive") true stats.Dpor.exhaustive
        | exception Sim.Violation { schedule; message } ->
            Alcotest.failf "%s: schedule [%s]: %s" s.scenario
              (String.concat ";" (List.map string_of_int schedule))
              message)
    (Scenarios.specs ())

let dpor_convicts_bw_noscan () =
  (* Disabling the announcement scan recycles a buffer a delayed enqueuer
     still holds reserved; its SC then succeeds against the recycled
     pointer and the item vanishes.  The checker must find that
     interleaving (a safety violation, convicted by conservation), and the
     schedule must reproduce through replay. *)
  let spec = find_spec "evequoz-bw-noscan" "recycled-buffer-aba" in
  match
    Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance
  with
  | _ -> Alcotest.fail "seeded BW reclamation bug not convicted"
  | exception Sim.Violation { schedule; message } -> (
      Alcotest.(check bool) "safety, not liveness" false
        (Props.is_liveness_message message);
      match
        Dpor.replay ~progress:spec.progress spec.build_instance schedule
      with
      | { Dpor.violation = Some _; _ } -> ()
      | { Dpor.violation = None; _ } ->
          Alcotest.fail "replay did not reproduce the violation")

let dpor_seg_matrix () =
  (* The segmented unbounded queue over ideal cells: the whole standard
     matrix plus the grow-during-drain race through DPOR with the
     strengthened checks — conservation by drain, reclamation hygiene at
     quiescence, and the segment-count bound plus per-segment index
     windows as per-step invariants. *)
  List.iter
    (fun (s : Scenarios.spec) ->
      if s.algorithm = "evequoz-seg" then
        match
          Dpor.explore ~max_steps:150 ~progress:s.progress s.build_instance
        with
        | stats ->
            Alcotest.(check bool)
              (s.scenario ^ ": exhaustive") true stats.Dpor.exhaustive
        | exception Sim.Violation { schedule; message } ->
            Alcotest.failf "%s: schedule [%s]: %s" s.scenario
              (String.concat ";" (List.map string_of_int schedule))
              message)
    (Scenarios.specs ())

let dpor_convicts_seg_noretire () =
  (* Skipping the hazard hand-off on retire lets a stalled dequeuer
     observe the drained segment's recycled state — here reporting empty
     while items sit in the successor.  The checker must find that
     interleaving (a safety violation, convicted by linearizability) and
     the schedule must reproduce through replay. *)
  let spec = find_spec "evequoz-seg-noretire" "recycled-segment-read" in
  match
    Dpor.explore ~max_steps:150 ~progress:spec.progress spec.build_instance
  with
  | _ -> Alcotest.fail "seeded segment-reclamation bug not convicted"
  | exception Sim.Violation { schedule; message } -> (
      Alcotest.(check bool) "safety, not liveness" false
        (Props.is_liveness_message message);
      match
        Dpor.replay ~progress:spec.progress spec.build_instance schedule
      with
      | { Dpor.violation = Some _; _ } -> ()
      | { Dpor.violation = None; _ } ->
          Alcotest.fail "replay did not reproduce the violation")

let dpor_scq_matrix () =
  (* Nikolaev's SCQ (plain, SCQD pairing, wCQ-style helping): the whole
     standard matrix through DPOR with linearizability plus
     conservation-by-drain.  The rings claim obstruction freedom (an
     enqueuer's ticket can be invalidated by every bump the dequeuers'
     budget pays for), so every tree must still complete exhaustively
     under the step budget with no violation. *)
  List.iter
    (fun (s : Scenarios.spec) ->
      if List.mem s.algorithm [ "scq"; "scq-d"; "scq-wcq" ] then
        match
          Dpor.explore ~max_steps:60 ~progress:s.progress s.build_instance
        with
        | stats ->
            Alcotest.(check bool)
              (s.algorithm ^ "/" ^ s.scenario ^ ": exhaustive")
              true stats.Dpor.exhaustive;
            Alcotest.(check int)
              (s.algorithm ^ "/" ^ s.scenario ^ ": no stuck branch")
              0 stats.Dpor.stuck
        | exception Sim.Violation { schedule; message } ->
            Alcotest.failf "%s/%s: schedule [%s]: %s" s.algorithm s.scenario
              (String.concat ";" (List.map string_of_int schedule))
              message)
    (Scenarios.specs ())

let dpor_convicts_scq_nothreshold () =
  (* The seeded SCQ livelock: without the threshold's retry budget a
     missed dequeue goes again unconditionally, and the drained-queue
     dequeuer bumps slots and drags tail forever.  The checker must
     convict it as a *liveness* violation carrying a livelock witness,
     the NBQ-FAULT-REPRO v2-mc line must survive a print/parse
     roundtrip, and the schedule must re-derive the same verdict through
     replay. *)
  let spec = find_spec "scq-nothreshold" "deq-chase-livelock" in
  match
    Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance
  with
  | _ -> Alcotest.fail "seeded SCQ no-threshold livelock not convicted"
  | exception Sim.Violation { schedule; message } ->
      Alcotest.(check bool) "classified as liveness" true
        (Props.is_liveness_message message);
      let repro =
        Repro.of_violation ~algorithm:spec.algorithm ~scenario:spec.scenario
          ~message schedule
      in
      let line = Repro.to_line repro in
      (match Repro.parse ("log noise " ^ line) with
      | Some r ->
          Alcotest.(check string) "algorithm" "scq-nothreshold"
            r.Repro.algorithm;
          Alcotest.(check string) "scenario" "deq-chase-livelock"
            r.Repro.scenario;
          Alcotest.(check (list int)) "schedule" schedule r.Repro.schedule;
          Alcotest.(check bool) "kind" true (r.Repro.kind = `Liveness)
      | None -> Alcotest.fail "repro line did not parse back");
      (match
         Dpor.replay ~progress:spec.progress spec.build_instance schedule
       with
      | { Dpor.violation = Some _; status = `Diverged (Props.Livelock_witness _)
        } ->
          ()
      | { Dpor.violation = Some _; _ } ->
          Alcotest.fail "replay violated but not as a livelock witness"
      | { Dpor.violation = None; _ } ->
          Alcotest.fail "replay did not reproduce the violation");
      (* ... and the legacy surface agrees the schedule diverges. *)
      (match
         Sim.run_schedule ~max_steps:(List.length schedule)
           (Scenarios.scenario_of_spec spec)
           schedule
       with
      | `Diverged -> ()
      | `Completed -> Alcotest.fail "run_schedule completed unexpectedly")

let dpor_extra_specs_quick () =
  (* The post-paper scenarios: sharded steal-sweep and Algorithm 2's
     batch-run commit/drain races.  Tiny trees, strong checks. *)
  List.iter
    (fun (algorithm, scenario) ->
      let s = find_spec algorithm scenario in
      match
        Dpor.explore ~max_steps:60 ~progress:s.progress s.build_instance
      with
      | stats ->
          Alcotest.(check bool)
            (algorithm ^ "/" ^ scenario ^ ": exhaustive")
            true stats.Dpor.exhaustive;
          Alcotest.(check bool)
            (algorithm ^ "/" ^ scenario ^ ": nontrivial")
            true (stats.Dpor.schedules > 1)
      | exception Sim.Violation { schedule; message } ->
          Alcotest.failf "%s/%s: schedule [%s]: %s" algorithm scenario
            (String.concat ";" (List.map string_of_int schedule))
            message)
    [
      ("sharded-llsc", "steal-sweep-2x2");
      ("evequoz-cas", "batch-commit");
      ("evequoz-cas", "batch-drain");
    ]

let dump_schedule_renders () =
  let spec = find_spec "toy-blocking" "spin-on-dead-flag" in
  let schedule =
    match
      Dpor.explore ~max_steps:60 ~progress:spec.progress spec.build_instance
    with
    | _ -> Alcotest.fail "expected a violation"
    | exception Sim.Violation { schedule; _ } -> schedule
  in
  let path = Filename.temp_file "nbq-dump" ".txt" in
  let oc = open_out path in
  Scenarios.dump_schedule spec schedule oc;
  close_out oc;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "names the spec" true
    (let sub = "toy-blocking/spin-on-dead-flag" in
     let n = String.length sub and m = String.length text in
     let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
     go 0);
  Alcotest.(check bool) "shows steps" true
    (String.length text > 200)

let repro_parse_rejects_noise () =
  Alcotest.(check bool) "plain text" true (Repro.parse "hello world" = None);
  Alcotest.(check bool) "v1 line is not v2-mc" true
    (Repro.parse
       "NBQ-FAULT-REPRO v1-torture queue=evequoz-llsc point=ll_reserve \
        action=stall workers=4 ops=100 trigger=12 seed=1"
    = None);
  let t =
    {
      Repro.algorithm = "evequoz-llsc";
      scenario = "enq-enq";
      kind = `Safety;
      schedule = [];
    }
  in
  match Repro.parse (Repro.to_line t) with
  | Some r ->
      Alcotest.(check bool) "empty schedule roundtrips" true
        (r.Repro.schedule = [])
  | None -> Alcotest.fail "roundtrip failed"

let () =
  Alcotest.run "modelcheck"
    [
      ( "explorer",
        [
          quick "finds a planted lost update" explorer_finds_lost_update;
          quick "CAS increment exact" explorer_cas_increment_exact;
          quick "LL/SC counter exact" explorer_llsc_counter_exact;
          quick "finds the naive-ring bug" explorer_finds_naive_ring_bug;
          slow "mcas transfers atomic" explorer_mcas_transfer_atomic;
          quick "bound 0 = sequential schedules" explorer_sequential_bound_zero;
        ] );
      ( "algorithm-1",
        [
          slow "enq|enq" q1_enq_enq;
          slow "enq|deq empty" q1_enq_deq_empty;
          slow "enq|deq nonempty" q1_enq_deq_nonempty;
          slow "deq|deq" q1_deq_deq;
          slow "enq|deq at full" q1_full_boundary;
          slow "2 ops each" q1_two_ops_each;
          slow "three threads" q1_three_threads;
          slow "peek|deq" q1_peek_vs_deq;
          slow "peek|enq empty" q1_peek_vs_enq_empty;
        ] );
      ( "algorithm-2",
        [
          slow "enq|enq" q2_enq_enq;
          slow "enq|deq empty" q2_enq_deq_empty;
          slow "enq|deq nonempty" q2_enq_deq_nonempty;
          slow "deq|deq" q2_deq_deq;
          slow "enq|deq at full" q2_full_boundary;
          slow "2 ops each" q2_two_ops_each;
          slow "three threads" q2_three_threads;
          slow "peek|deq" q2_peek_vs_deq;
          slow "peek|enq empty" q2_peek_vs_enq_empty;
          slow "livelock branches exist unbounded" q2_livelock_branches_exist;
        ] );
      ( "baselines",
        [
          slow "shann matrix" shann_matrix;
          slow "shann three threads" shann_three_threads;
          slow "tsigas-zhang matrix" tz_matrix;
          slow "ms-gc matrix" ms_matrix;
          slow "herlihy-wing matrix" hw_matrix;
          slow "lms-optimistic matrix" lms_matrix;
          slow "valois-dcas matrix" valois_matrix;
        ] );
      ( "dpor",
        [
          quick "convicts toy-blocking spin" dpor_convicts_toy_blocking;
          quick "convicts eventcount lost wakeup" dpor_convicts_lost_wakeup;
          quick "park/wake has no lost wakeup" dpor_park_wake_no_lost_wakeup;
          quick "catches planted safety bug" dpor_catches_planted_safety_bug;
          quick ">=5x reduction vs plain DFS" dpor_reduction_factor;
          quick "livelock witness classification" dpor_livelock_witness_classified;
          quick "algorithm-1 matrix exhaustive" dpor_llsc_matrix_quick;
          quick "blelloch-wei matrix exhaustive" dpor_bw_matrix_quick;
          quick "convicts BW no-scan recycling" dpor_convicts_bw_noscan;
          quick "segmented matrix exhaustive" dpor_seg_matrix;
          quick "convicts segmented no-retire" dpor_convicts_seg_noretire;
          slow "scq matrix exhaustive" dpor_scq_matrix;
          quick "convicts scq no-threshold livelock" dpor_convicts_scq_nothreshold;
          quick "sharded + batch scenarios" dpor_extra_specs_quick;
          quick "dump_schedule renders" dump_schedule_renders;
          quick "repro parse rejects noise" repro_parse_rejects_noise;
        ] );
    ]
